"""Training-time breakdowns in the paper's category scheme.

The stacked-bar figures (3, 4, 5, 20) report the fraction of training time
spent in: MLP forward, embedding forward, backward, optimizer,
CPU-GPU / inter-GPU communication, and the all-to-all collective.  Timelines
produced by the execution models use the same category keys, so converting a
timeline into a figure row is a normalisation step.
"""

from __future__ import annotations

from repro.hwsim.trace import Timeline

#: Category keys in the order the paper's legends list them.
BREAKDOWN_CATEGORIES: tuple[str, ...] = (
    "mlp",
    "embedding",
    "backward",
    "optimizer",
    "comm",
    "alltoall",
    "overhead",
)


def normalised_breakdown(timeline: Timeline) -> dict[str, float]:
    """Per-category fractions of a timeline, with every category present."""
    fractions = timeline.category_fractions()
    full = {category: fractions.get(category, 0.0) for category in BREAKDOWN_CATEGORIES}
    # Any category the timeline used beyond the standard set is kept too.
    for key, value in fractions.items():
        if key not in full:
            full[key] = value
    return full


def merge_breakdowns(breakdowns: list[dict[str, float]]) -> dict[str, float]:
    """Average several breakdowns (e.g. across datasets) category-wise."""
    if not breakdowns:
        return {category: 0.0 for category in BREAKDOWN_CATEGORIES}
    keys = set(BREAKDOWN_CATEGORIES)
    for breakdown in breakdowns:
        keys.update(breakdown)
    merged = {
        key: sum(breakdown.get(key, 0.0) for breakdown in breakdowns) / len(breakdowns)
        for key in keys
    }
    return merged


def embedding_related_fraction(breakdown: dict[str, float]) -> float:
    """Fraction of time spent on embedding work + communication.

    This is the quantity the paper highlights in Figure 3 (up to 75 % for
    Criteo Terabyte in the hybrid mode) — the portion Hotline targets.
    """
    return (
        breakdown.get("embedding", 0.0)
        + breakdown.get("comm", 0.0)
        + breakdown.get("alltoall", 0.0)
        + breakdown.get("optimizer", 0.0)
    )
