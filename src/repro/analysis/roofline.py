"""Roofline analysis of the embedding-lookup phase (Section IV).

The paper's roofline argument: embedding lookups are bandwidth-bound, so
moving them from CPU DDR4 (76.8 GB/s peak, much less for scattered rows) to
GPU HBM (900 GB/s) offers a theoretical ~3x gain over Intel's optimized
EmbeddingBag operator; in practice Hotline achieves ~2.2x end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hwsim.device import TESLA_V100, XEON_SILVER_4116, CPUSpec, GPUSpec
from repro.models.configs import ModelConfig


@dataclass(frozen=True)
class RooflinePoint:
    """One operating point of the embedding-lookup roofline.

    Attributes:
        name: Label (e.g. "CPU DDR4", "GPU HBM2").
        bandwidth: Achievable bandwidth for scattered row gathers (B/s).
        lookup_time_s: Time to gather one mini-batch's embedding rows.
    """

    name: str
    bandwidth: float
    lookup_time_s: float


def embedding_lookup_roofline(
    model: ModelConfig,
    batch_size: int,
    cpu: CPUSpec = XEON_SILVER_4116,
    gpu: GPUSpec = TESLA_V100,
) -> dict[str, RooflinePoint]:
    """Compare CPU-DRAM vs GPU-HBM embedding gather for one mini-batch.

    Returns one :class:`RooflinePoint` per memory system plus the resulting
    theoretical speedup under the key ``"speedup"`` (stored as a point whose
    ``bandwidth`` field carries the ratio).
    """
    lookup_bytes = batch_size * model.lookup_bytes_per_sample()
    cpu_time = cpu.memory.gather_time(lookup_bytes)
    gpu_time = gpu.memory.gather_time(lookup_bytes)
    speedup = cpu_time / gpu_time if gpu_time > 0 else float("inf")
    return {
        "cpu": RooflinePoint("CPU DDR4", cpu.memory.gather_bandwidth, cpu_time),
        "gpu": RooflinePoint("GPU HBM2", gpu.memory.gather_bandwidth, gpu_time),
        "speedup": RooflinePoint("HBM over DDR4", speedup, cpu_time - gpu_time),
    }
