"""Plain-text formatting of figure rows and tables.

The benchmark harness regenerates every table and figure of the paper as
text: a table is a list of rows, a figure is one or more named series.
These helpers keep the output format consistent across benches and are also
reused by the example scripts.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a fixed-width text table."""
    materialised = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence[object],
    ys: Sequence[float],
    *,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one figure series as aligned (x, y) pairs."""
    rows = [(x, y) for x, y in zip(xs, ys, strict=True)]
    return format_table([x_label, y_label], rows, title=name)


def format_breakdown(name: str, breakdown: Mapping[str, float]) -> str:
    """Render a category -> fraction breakdown as percentages."""
    rows = [(category, f"{100.0 * value:.1f}%") for category, value in breakdown.items() if value]
    return format_table(["phase", "share"], rows, title=name)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
