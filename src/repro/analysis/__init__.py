"""Analysis and reporting utilities for the evaluation figures.

* :mod:`repro.analysis.breakdown` — per-phase training-time breakdowns in
  the category scheme the paper's stacked-bar figures use (Figs. 3-5, 20).
* :mod:`repro.analysis.roofline` — the roofline argument of Section IV
  (HBM vs DDR4 embedding-lookup bandwidth bound, ~3x theoretical gain).
* :mod:`repro.analysis.report` — plain-text table/series formatting used by
  the benchmark harness to print the rows each figure plots.
"""

from repro.analysis.breakdown import BREAKDOWN_CATEGORIES, merge_breakdowns, normalised_breakdown
from repro.analysis.report import format_breakdown, format_series, format_table
from repro.analysis.roofline import RooflinePoint, embedding_lookup_roofline

__all__ = [
    "BREAKDOWN_CATEGORIES",
    "normalised_breakdown",
    "merge_breakdowns",
    "embedding_lookup_roofline",
    "RooflinePoint",
    "format_table",
    "format_series",
    "format_breakdown",
]
