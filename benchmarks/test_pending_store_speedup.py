"""Pending-store microbenchmark: flat arrays vs the dict reference.

The lookahead cache's deferred write-back store moved from per-table
``dict[int, np.ndarray]`` churn (O(nnz) Python per step) to
:class:`~repro.core.lookahead.FlatPendingStore` — a dense gradient
accumulation buffer + pending bitmap + birth-step array with a birth-bucket
age index, all driven by vectorised scatters and boolean masks.  This
benchmark drives both stores through the same defer → age-flush → take
cycle the :class:`~repro.core.lookahead.CachedEmbeddingPipeline` performs
each training step, at RM1-scale nnz (a 2048-sample Taobao batch touches
tens of thousands of unique rows per step across the 21-lookup history
table), and asserts the multiple-x speedup that justifies the flat layout.
Bit-parity first: a fast-but-wrong store must not pass.

The gate is 3.5×, not the ~5× the store typically measures: the
window-bounded compact layout (sorted rows + slot indirection instead of
table-sized dense scatter buffers) deliberately trades a slice of this
benchmark's throughput for O(cached-rows) memory — the table-sized
buffers were ~10 GB per Criteo-Terabyte table — and the measured speedup
straddles 5× under load.  The artifact still records the exact measured
value, so drift below ~5× is visible even while the assertion holds.
"""

import time

import numpy as np

from benchmarks.figutils import record_bench
from repro.core.lookahead import FlatPendingStore, ReferencePendingStore
from repro.models import RM1
from repro.nn.embedding import SparseGradient

#: Minimum speedup of the flat store over the dict reference (see the
#: module docstring for why this sits below the typical ~5× measurement).
MIN_SPEEDUP = 3.5

#: Tables scaled like the hot-path benchmarks (full RM1 weights are not
#: materialised anyway — only the flat store's accumulation buffers — but
#: the 1M-row item table keeps the buffers at a realistic, cache-hostile
#: size while staying CI-friendly).
CONFIG = RM1.scaled(max_rows_per_table=1_000_000)

#: Unique deferred rows per table per step — RM1-scale nnz: batch 2048 ×
#: the 21-lookup history reaches ~16-40k unique rows on the item table.
NNZ_PER_STEP = 16_384

STEPS = 24
STALENESS = 2


def make_steps(rows_per_table, dim, seed=5):
    rng = np.random.default_rng(seed)
    steps = []
    for _ in range(STEPS):
        grads = []
        for rows in rows_per_table:
            nnz = min(NNZ_PER_STEP, rows // 2)
            unique = np.sort(rng.choice(rows, size=nnz, replace=False))
            grads.append(
                SparseGradient(unique.astype(np.int64), rng.normal(size=(nnz, dim)))
            )
        steps.append(grads)
    return steps


def drive(store, steps):
    """One pipeline-shaped cycle: defer, age-scan, flush, final drain."""
    flushed = []
    for step, grads in enumerate(steps):
        for table, grad in enumerate(grads):
            store.defer(table, grad, step)
            aged = store.aged_rows(table, step, STALENESS)
            flushed.append(store.take(table, aged))
    for table in range(len(steps[0])):
        flushed.append(store.take_all(table))
    return flushed


def best_of(fn, repeats=3):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_pending_store_speedup(benchmark):
    rows_per_table = CONFIG.dataset.rows_per_table
    steps = make_steps(rows_per_table, CONFIG.embedding_dim)

    flat = FlatPendingStore(rows_per_table)
    reference = ReferencePendingStore(rows_per_table)

    # Parity first: every flushed gradient must match bit for bit.
    for flat_grad, ref_grad in zip(drive(flat, steps), drive(reference, steps), strict=True):
        np.testing.assert_array_equal(flat_grad.indices, ref_grad.indices)
        np.testing.assert_array_equal(flat_grad.values, ref_grad.values)

    # Steady state: the warm-up above also faulted in the flat store's
    # accumulation buffers (a one-time cost in real training, where one
    # store lives for the whole run).
    flat_time = best_of(lambda: drive(flat, steps))
    ref_time = best_of(lambda: drive(reference, steps))
    benchmark(lambda: drive(flat, steps))
    speedup = ref_time / flat_time
    per_step = flat_time / STEPS
    print(
        f"\npending store @ {NNZ_PER_STEP} nnz x {len(rows_per_table)} tables: "
        f"dict {ref_time * 1e3:.1f} ms, flat {flat_time * 1e3:.1f} ms "
        f"({per_step * 1e6:.0f} us/step), speedup {speedup:.1f}x"
    )
    record_bench(
        "pending_store_flat_vs_dict",
        config=f"RM1-scale nnz={NNZ_PER_STEP}, tables={rows_per_table}, "
        f"dim={CONFIG.embedding_dim}, staleness={STALENESS}, steps={STEPS}",
        seconds=per_step,
        speedup=speedup,
        gate=MIN_SPEEDUP,
        enforced=True,
    )
    assert speedup >= MIN_SPEEDUP


def test_pending_store_speedup_skewed_traffic(benchmark):
    """Zipf-skewed deferrals (the pipeline's real traffic): fewer unique
    rows per step, so the dict's per-row cost shrinks — the flat store
    must still win clearly."""
    rows_per_table = CONFIG.dataset.rows_per_table
    rng = np.random.default_rng(11)
    steps = []
    for _ in range(STEPS):
        grads = []
        for rows in rows_per_table:
            draw = rng.zipf(1.3, size=2048 * 21) % rows
            unique = np.unique(draw)
            grads.append(
                SparseGradient(
                    unique.astype(np.int64),
                    rng.normal(size=(unique.size, CONFIG.embedding_dim)),
                )
            )
        steps.append(grads)

    flat = FlatPendingStore(rows_per_table)
    reference = ReferencePendingStore(rows_per_table)
    drive(flat, steps)  # warm (buffer allocation + page faults)
    drive(reference, steps)
    flat_time = best_of(lambda: drive(flat, steps))
    ref_time = best_of(lambda: drive(reference, steps))
    benchmark(lambda: drive(flat, steps))
    speedup = ref_time / flat_time
    print(
        f"\npending store, zipf traffic: dict {ref_time * 1e3:.1f} ms, "
        f"flat {flat_time * 1e3:.1f} ms, speedup {speedup:.1f}x"
    )
    record_bench(
        "pending_store_flat_vs_dict_zipf",
        config=f"zipf(1.3) 2048x21 lookups, tables={rows_per_table}",
        seconds=flat_time / STEPS,
        speedup=speedup,
    )
    assert speedup >= 2.0
