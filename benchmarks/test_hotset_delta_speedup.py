"""Micro-benchmark: incremental HotSetIndex updates vs full rebuilds.

Recalibration used to rebuild every per-table membership bitmap from
scratch, a cost that grows with the *table* size (allocate + repopulate +
re-fault the whole bitmap).  The delta path
(:meth:`~repro.core.hotset.HotSetIndex.replace_table`) computes the drifted
rows in O(hot-set) work and flips only those bits, so its cost is
independent of the table size.  This benchmark pins the hot-set size and
grows the table 10x: the rebuild path's cost scales with the table, the
delta path's stays flat, and at Criteo-Terabyte-order tables the delta
path wins outright — which is what keeps the paper's twice-per-epoch
recalibration cadence cheap.
"""

import time

import numpy as np

from repro.core.hotset import HotSetIndex

#: EAL-capacity-order tracked hot rows (fixed across table sizes).
HOT_ROWS = 50_000

#: Fraction of the hot set that drifts between recalibrations.
DRIFT = 0.05

#: Small / large table sizes (the large one is Criteo-Terabyte order).
SMALL_TABLE = 4_000_000
LARGE_TABLE = 40_000_000

#: Classification probe issued after each update so both paths pay the
#: first-use page-fault cost of the bitmap they produce.
PROBE_LOOKUPS = 50_000

ROUNDS = 5


def drifted_hot_sets(rows_per_table):
    rng = np.random.default_rng(7)
    old_hot = np.sort(rng.choice(rows_per_table, size=HOT_ROWS, replace=False))
    keep = rng.random(HOT_ROWS) >= DRIFT
    fresh = rng.choice(rows_per_table, size=int(HOT_ROWS * DRIFT), replace=False)
    return old_hot, np.union1d(old_hot[keep], fresh)


def time_paths(rows_per_table):
    """(rebuild seconds, delta seconds) per recalibration at one table size."""
    old_hot, new_hot = drifted_hot_sets(rows_per_table)
    probe = np.random.default_rng(3).integers(0, rows_per_table, size=PROBE_LOOKUPS)
    rebuild = delta = 0.0
    for _ in range(ROUNDS):
        start = time.perf_counter()
        rebuilt = HotSetIndex([new_hot], rows_per_table=(rows_per_table,))
        rebuilt.contains(0, probe)
        rebuild += time.perf_counter() - start

        index = HotSetIndex([old_hot], rows_per_table=(rows_per_table,))
        index.contains(0, probe)  # warm, as a live placement's bitmap would be
        start = time.perf_counter()
        index.replace_table(0, new_hot)
        index.contains(0, probe)
        delta += time.perf_counter() - start
    return rebuild / ROUNDS, delta / ROUNDS


def test_delta_update_is_table_size_independent(benchmark):
    small = time_paths(SMALL_TABLE)
    (rebuild_large, delta_large) = benchmark.pedantic(
        lambda: time_paths(LARGE_TABLE), rounds=1, iterations=1
    )
    rebuild_small, delta_small = small
    print()
    for label, (rebuild_s, delta_s) in (
        (f"{SMALL_TABLE:,} rows", small),
        (f"{LARGE_TABLE:,} rows", (rebuild_large, delta_large)),
    ):
        print(
            f"  {label}: rebuild {rebuild_s * 1e3:.2f} ms, "
            f"delta {delta_s * 1e3:.2f} ms ({rebuild_s / delta_s:.1f}x)"
        )
    # Rebuild cost tracks the table size (10x more rows here)...
    assert rebuild_large / rebuild_small > 3.0
    # ...while the delta path's O(hot-set) cost stays essentially flat...
    assert delta_large / delta_small < 3.0
    # ...so at Criteo-Terabyte order the delta path wins outright.
    assert rebuild_large / delta_large > 2.0


def test_delta_update_matches_rebuild_state():
    old_hot, new_hot = drifted_hot_sets(SMALL_TABLE)
    index = HotSetIndex([old_hot], rows_per_table=(SMALL_TABLE,))
    added, removed = index.replace_table(0, new_hot)
    rebuilt = HotSetIndex([new_hot], rows_per_table=(SMALL_TABLE,))
    probe = np.random.default_rng(3).integers(0, SMALL_TABLE, size=8192)
    np.testing.assert_array_equal(index.contains(0, probe), rebuilt.contains(0, probe))
    np.testing.assert_array_equal(np.sort(added), np.setdiff1d(new_hot, old_hot))
    np.testing.assert_array_equal(np.sort(removed), np.setdiff1d(old_hot, new_hot))
