"""Figure 4 — training-time breakdown of the single-node GPU-only mode.

Paper claim: on a 4-GPU NVLink node the embedding all-to-all consumes about
12 % of the training time even with fast interconnect; the remaining time is
dominated by the MLPs and the optimizer.
"""

import pytest

from benchmarks.figutils import BATCH_PER_GPU, WORKLOADS, cost_model
from repro.analysis.breakdown import normalised_breakdown
from repro.analysis.report import format_breakdown
from repro.baselines import HugeCTRGPUOnly


def build_breakdowns():
    result = {}
    for label, config in WORKLOADS:
        mode = HugeCTRGPUOnly(cost_model(config, gpus=4))
        if not mode.is_feasible():
            continue
        result[label] = normalised_breakdown(mode.step_timeline(4 * BATCH_PER_GPU))
    return result


def test_fig04_single_node_gpu_only_breakdown(benchmark):
    breakdowns = benchmark(build_breakdowns)
    print()
    for label, breakdown in breakdowns.items():
        print(format_breakdown(f"Figure 4 - {label} (GPU-only, 4 GPUs, NVLink)", breakdown))
        print()

    assert len(breakdowns) >= 3  # every model that fits in 4x16 GB HBM
    for label, breakdown in breakdowns.items():
        # The all-to-all is visible but not dominant on a single NVLink node.
        assert 0.03 < breakdown["alltoall"] < 0.35, label
        # No CPU embedding work remains in the GPU-only mode.
        assert breakdown["embedding"] < 0.2, label
    kaggle = breakdowns["Criteo Kaggle"]
    assert kaggle["alltoall"] == pytest.approx(0.12, abs=0.08)
