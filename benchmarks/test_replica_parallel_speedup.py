"""Parallel per-replica stepping on the fig30 config: parity + step time.

The K-shard Hotline trainer's step loop runs one forward/backward per
replica; those passes are independent until the bucketed reduce, and the
numpy GEMMs inside them release the GIL, so PR 6 fans them out on a shared
thread pool (``parallel_workers``).  Determinism is preserved by
construction — partial gradients are collected per replica *index* and the
loss fold, reducer, and sparse exchange all run on the caller thread in
replica order — so the parallel schedule is **bit-identical** to the
sequential one.  That identity is asserted here end-to-end (losses, every
parameter, zero replica drift) and in ``tests/core/test_replica_parity.py``.

The wall-clock claim (>= 1.3x with 4 workers on a K=4 fig30-style step) is
only measurable with real cores underneath the pool: on a single-CPU
container the threads just time-slice.  The parity assertions always run;
the speedup gate is enforced only under ``BENCH_STRICT`` with at least 4
visible cores, and the recorded artifact says whether it was (``gate`` /
``enforced``), so a skipped gate can never pass for a measured one —
``benchmarks/check_bench_gates.py`` audits exactly that.
"""

import os
import time

import numpy as np

from benchmarks.figutils import record_bench
from repro.core.distributed import ShardedHotlineTrainer
from repro.data import MiniBatchLoader, generate_click_log
from repro.models import RM2
from repro.models.dlrm import DLRM

#: 4 workers over 4 replica steps must win at least this factor on
#: >= 4 real cores (the fig30 testbed shape).
MIN_SPEEDUP = 1.3
NUM_SHARDS = 4
WORKERS = 4


def make_trainer(config, log, workers):
    trainer = ShardedHotlineTrainer(
        DLRM(config, seed=13),
        NUM_SHARDS,
        lr=0.3,
        sample_fraction=0.25,
        parallel_workers=workers,
    )
    trainer.bind(MiniBatchLoader(log, batch_size=512))
    return trainer


def test_parallel_replica_step_matches_and_speeds_up(benchmark):
    config = RM2.scaled(max_rows_per_table=1200, samples_per_epoch=4096)
    log = generate_click_log(config.dataset, 4096, seed=47)
    batches = list(MiniBatchLoader(log, batch_size=512))

    sequential = make_trainer(config, log, workers=1)
    parallel = make_trainer(config, log, workers=WORKERS)

    # Bit-identity first (one full epoch): losses, drift, every parameter of
    # every replica, and the per-replica wall times are surfaced.
    sequential_losses = [sequential.train_step(batch)[0] for batch in batches]
    parallel_losses = [parallel.train_step(batch)[0] for batch in batches]
    assert parallel_losses == sequential_losses
    assert parallel.replica_drift() == 0.0
    assert len(parallel.last_replica_times) == NUM_SHARDS
    assert all(t > 0.0 for t in parallel.last_replica_times)
    for replica_s, replica_p in zip(
        sequential.replicas, parallel.replicas, strict=True
    ):
        state_s = replica_s.model.state_snapshot()
        for key, value in replica_p.model.state_snapshot().items():
            np.testing.assert_array_equal(state_s[key], value, err_msg=key)

    # Interleaved per-step best-of timing, A/B order flipped every round.
    rounds = 6
    sequential_steps = np.full(len(batches), np.inf)
    parallel_steps = np.full(len(batches), np.inf)
    for round_index in range(rounds):
        for i, batch in enumerate(batches):
            contenders = [
                (sequential, sequential_steps),
                (parallel, parallel_steps),
            ]
            if round_index % 2:
                contenders.reverse()
            for trainer, steps in contenders:
                start = time.perf_counter()
                trainer.train_step(batch)
                steps[i] = min(steps[i], time.perf_counter() - start)
    best_sequential = float(sequential_steps.sum())
    best_parallel = float(parallel_steps.sum())
    benchmark.pedantic(
        lambda: [parallel.train_step(batch) for batch in batches],
        rounds=1,
        iterations=1,
    )
    sequential.finalize()
    parallel.finalize()
    speedup = best_sequential / best_parallel
    cores = os.cpu_count() or 1
    enforce = bool(os.environ.get("BENCH_STRICT")) and cores >= WORKERS
    print(
        f"\nfig30-style K={NUM_SHARDS} epoch ({len(batches)} steps, {cores} "
        f"cores): sequential {best_sequential * 1e3:.1f} ms, "
        f"{WORKERS}-worker {best_parallel * 1e3:.1f} ms, speedup "
        f"{speedup:.3f}x (bit-identical losses; gate "
        f"{'enforced' if enforce else 'recorded only'})"
    )
    # The gate is only *claimed* where it is measurable: with fewer cores
    # than workers the threads just time-slice and the measured ratio says
    # nothing about the parallel win, so recording the gate there would
    # trip the checker on an unmeasurable claim.  The core count is in the
    # config string either way.
    measurable = cores >= WORKERS
    record_bench(
        "replica_parallel_step_fig30",
        config=(
            f"RM2.scaled(1200) batch=512, K={NUM_SHARDS} replicas, "
            f"parallel_workers={WORKERS} vs 1, {cores} cores"
        ),
        seconds=best_parallel / len(batches),
        speedup=speedup,
        gate=MIN_SPEEDUP if measurable else None,
        enforced=enforce,
    )
    if enforce:
        assert speedup >= MIN_SPEEDUP
