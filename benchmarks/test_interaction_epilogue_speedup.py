"""Single-pass interaction kernel + fused loss epilogue: measured wins.

Two claims from the PR 10 dense-FLOP work, measured at the Figure 18
shape and recorded to ``BENCH_sparse_path.json``:

* ``interaction_kernel`` — the batched-GEMM dot-interaction
  forward+backward vs the retained einsum reference, at the fig18
  interaction shape (batch 256, 27 features, dim 16).  Kernel-level and
  deterministic on any hardware, so its >=2x gate is **always enforced**.
* ``fig18_epilogue_e2e`` — the fig18 single-trainer end-to-end step with
  the new kernels vs the pre-PR baseline (both retained reference paths
  forced via the kernels' ``force_reference()`` hooks).  End-to-end
  wall-clock on shared runners is noisy, so the >=1.05x gate is recorded
  always but **enforced only under ``BENCH_STRICT``** (the nightly job);
  ``check_bench_gates.py`` still fails CI if the recorded speedup falls
  below the gate while the assertion was skipped.

The e2e contenders are *not* bit-identical (batched matmul vs einsum
reduction order), so the parity sanity here is allclose on losses; the
bitwise guarantees live in the parity grids
(``tests/core/test_batched_dense.py``, ``tests/core/
test_fused_microbatch.py``) which compare execution paths of the *same*
kernels.
"""

import os
import time

import numpy as np

from benchmarks.figutils import record_bench
from repro.core.accelerator import HotlineAccelerator
from repro.core.eal import EALConfig
from repro.core.pipeline import HotlineTrainer
from repro.data import MiniBatchLoader, generate_click_log
from repro.models import RM2
from repro.models.dlrm import DLRM
from repro.nn import interaction as interaction_mod
from repro.nn import loss as loss_mod
from repro.nn.interaction import (
    DotInteractionKernel,
    reference_dot_interaction,
    reference_dot_interaction_backward,
)

#: The batched-GEMM kernel must beat the einsum reference by at least
#: this factor at the fig18 shape (measured ~4x on a single core).
KERNEL_GATE = 2.0

#: The new kernels must buy at least this end-to-end fig18 step speedup
#: over the pre-PR (reference-kernel) baseline.
E2E_GATE = 1.05

#: fig18 interaction shape: batch 256, 26 sparse tables + 1 dense, dim 16.
BATCH, FEATURES, DIM = 256, 27, 16


def _best_of(fn, rounds=30):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_interaction_kernel_speedup(benchmark):
    rng = np.random.default_rng(97)
    dense = rng.standard_normal((BATCH, DIM))
    sparse = [rng.standard_normal((BATCH, DIM)) for _ in range(FEATURES - 1)]
    kernel = DotInteractionKernel()

    out_new, cache_probe = kernel.forward(dense, sparse)
    grad_out = rng.standard_normal(out_new.shape)
    kernel.backward(grad_out, cache_probe)
    out_ref, _ = reference_dot_interaction(dense, sparse)
    np.testing.assert_allclose(out_new, out_ref, rtol=1e-12, atol=1e-12)

    def new_pass():
        _, cache = kernel.forward(dense, sparse)
        kernel.backward(grad_out, cache)

    def reference_pass():
        _, cache = reference_dot_interaction(dense, sparse)
        reference_dot_interaction_backward(grad_out, cache)

    new_s = _best_of(new_pass)
    ref_s = _best_of(reference_pass)
    benchmark.pedantic(new_pass, rounds=3, iterations=1)
    speedup = ref_s / new_s
    print(
        f"\ninteraction fwd+bwd (batch {BATCH}, f {FEATURES}, dim {DIM}): "
        f"reference {ref_s * 1e6:.0f} us, batched-GEMM {new_s * 1e6:.0f} us, "
        f"speedup {speedup:.2f}x"
    )
    record_bench(
        "interaction_kernel",
        config=f"dot interaction fwd+bwd, batch={BATCH} features={FEATURES} dim={DIM}",
        seconds=new_s,
        speedup=speedup,
        gate=KERNEL_GATE,
        enforced=True,
    )
    assert speedup >= KERNEL_GATE


def make_trainer(config, log):
    accelerator = HotlineAccelerator(
        row_bytes=config.embedding_dim * 4,
        eal_config=EALConfig(size_bytes=1 << 17, ways=16),
    )
    trainer = HotlineTrainer(
        DLRM(config, seed=13), accelerator, lr=0.3, sample_fraction=0.25, fused=True
    )
    trainer.learning_phase(MiniBatchLoader(log, batch_size=256))
    return trainer


def test_fig18_epilogue_e2e_speedup(benchmark):
    config = RM2.scaled(max_rows_per_table=1200, samples_per_epoch=3072)
    log = generate_click_log(config.dataset, 3072, seed=41)
    batches = list(MiniBatchLoader(log, batch_size=256))[:6]

    new = make_trainer(config, log)
    old = make_trainer(config, log)

    # Loss-trajectory sanity: allclose, not bitwise (see module docstring).
    losses_new = [new.train_step(batch)[0] for batch in batches]
    with interaction_mod.force_reference(), loss_mod.force_reference():
        losses_old = [old.train_step(batch)[0] for batch in batches]
    np.testing.assert_allclose(losses_new, losses_old, rtol=1e-9)

    # Interleaved per-step best-of timing with A/B order flipped per round
    # (same discipline as test_fused_step_speedup.py).
    rounds = 10
    new_steps = np.full(len(batches), np.inf)
    old_steps = np.full(len(batches), np.inf)
    for round_index in range(rounds):
        for i, batch in enumerate(batches):
            order = [("new", new, new_steps), ("old", old, old_steps)]
            if round_index % 2:
                order.reverse()
            for label, trainer, steps in order:
                if label == "old":
                    with interaction_mod.force_reference(), loss_mod.force_reference():
                        start = time.perf_counter()
                        trainer.train_step(batch)
                        steps[i] = min(steps[i], time.perf_counter() - start)
                else:
                    start = time.perf_counter()
                    trainer.train_step(batch)
                    steps[i] = min(steps[i], time.perf_counter() - start)
    best_new = float(new_steps.sum())
    best_old = float(old_steps.sum())
    benchmark.pedantic(
        lambda: [new.train_step(batch) for batch in batches], rounds=1, iterations=1
    )
    speedup = best_old / best_new
    print(
        f"\nfig18 e2e ({len(batches)} steps): pre-PR kernels "
        f"{best_old * 1e3:.1f} ms, single-pass kernels {best_new * 1e3:.1f} ms, "
        f"speedup {speedup:.3f}x"
    )
    strict = bool(os.environ.get("BENCH_STRICT"))
    record_bench(
        "fig18_epilogue_e2e",
        config="RM2.scaled(1200) batch=256 fused step, new kernels vs forced reference",
        seconds=best_new / len(batches),
        speedup=speedup,
        gate=E2E_GATE,
        enforced=strict,
    )
    if strict:
        assert speedup >= E2E_GATE
