"""Figure 15 — the SRRIP-based EAL vs an Oracle LFU tracker.

Paper claim: the cheap 2-bit SRRIP tracker identifies ~90 % of the popular
inputs an ideal (unbounded-counter) LFU tracker would identify.
"""

from repro.analysis.report import format_table
from repro.core.eal import EALConfig, EmbeddingAccessLogger, OracleLFUTracker
from repro.core.lookup_engine import LookupEngineArray
from repro.data import generate_click_log
from repro.models import RM1, RM2, RM3, RM4

SCALED = [
    ("Criteo Kaggle", RM2.scaled(max_rows_per_table=1500)),
    ("Taobao Alibaba", RM1.scaled(max_rows_per_table=1500)),
    ("Criteo Terabyte", RM3.scaled(max_rows_per_table=1500)),
    ("Avazu", RM4.scaled(max_rows_per_table=1500)),
]

TRAIN_SAMPLES = 3000
EVAL_SAMPLES = 1500
EAL_ENTRIES = 2048


def compare_trackers():
    rows = []
    array = LookupEngineArray(64)
    for label, config in SCALED:
        log = generate_click_log(config.dataset, TRAIN_SAMPLES + EVAL_SAMPLES, seed=31)
        train = log.sparse[:TRAIN_SAMPLES]
        evaluation = log.sparse[TRAIN_SAMPLES:]

        eal = EmbeddingAccessLogger(
            EALConfig(size_bytes=EAL_ENTRIES * 2, ways=16), seed=0
        )
        oracle = OracleLFUTracker(capacity_entries=EAL_ENTRIES)
        eal.access_batch(train)
        oracle.access_batch(train)

        num_tables = config.num_sparse_features
        srrip_popular = array.classify_with_hot_sets(
            evaluation, eal.hot_indices(num_tables)
        ).mean()
        oracle_popular = array.classify_with_hot_sets(
            evaluation, oracle.hot_indices(num_tables)
        ).mean()
        rows.append((label, round(100 * oracle_popular, 1), round(100 * srrip_popular, 1)))
    return rows


def test_fig15_srrip_tracks_most_of_what_oracle_tracks(benchmark):
    rows = benchmark.pedantic(compare_trackers, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["dataset", "Oracle % popular", "SRRIP % popular"],
            rows,
            title="Figure 15: SRRIP tracker vs Oracle LFU",
        )
    )
    relative = []
    for label, oracle_pct, srrip_pct in rows:
        assert oracle_pct > 0
        relative.append(srrip_pct / oracle_pct)
    # On average the SRRIP tracker captures the large majority of the
    # popular inputs the Oracle captures (paper: ~90 %).
    assert sum(relative) / len(relative) > 0.7
