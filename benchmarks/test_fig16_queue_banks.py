"""Figure 16 — EAL design space: queue size x bank count vs parallel requests.

Paper claim: a 512-entry input queue over 64 banks sustains ~60 parallel
requests per iteration without collisions; fewer banks or shallower queues
issue proportionally fewer requests.
"""

from repro.analysis.report import format_table
from repro.core.eal import expected_parallel_requests

QUEUE_SIZES = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
BANKS = [8, 16, 32, 64]


def sweep():
    table = {}
    for banks in BANKS:
        for queue in QUEUE_SIZES:
            table[(banks, queue)] = expected_parallel_requests(queue, banks)
    return table


def test_fig16_queue_and_bank_design_space(benchmark):
    table = benchmark(sweep)
    print()
    rows = []
    for banks in BANKS:
        rows.append([f"{banks}-banks"] + [round(table[(banks, q)], 1) for q in QUEUE_SIZES])
    print(
        format_table(
            ["banks \\ queue"] + [str(q) for q in QUEUE_SIZES],
            rows,
            title="Figure 16: requests issued per iteration",
        )
    )
    # More banks and deeper queues both increase issued requests.
    for banks in BANKS:
        values = [table[(banks, q)] for q in QUEUE_SIZES]
        assert all(b >= a for a, b in zip(values, values[1:], strict=False))
        assert values[-1] <= banks
    for queue in QUEUE_SIZES:
        values = [table[(banks, queue)] for banks in BANKS]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:], strict=False))
    # The paper's design point: 64 banks x 512-entry queue -> ~60 requests.
    assert 55 < table[(64, 512)] <= 64
    # 8 banks saturate at 8 requests no matter the queue depth.
    assert table[(8, 1024)] <= 8
