"""Table II — recommender model architectures and parameter counts.

Regenerates the model-zoo table (features, parameters, MLP configuration,
embedding size in GB) from the ModelConfig objects and checks the headline
numbers against the paper.
"""

import pytest

from repro.analysis.report import format_table
from repro.models import PAPER_MODELS, RM1, RM2, RM3, RM4


def build_table():
    rows = []
    for name in ("RM1", "RM2", "RM3", "RM4", "SYN-M1", "SYN-M2"):
        config = PAPER_MODELS[name]
        rows.append(
            (
                name,
                config.dataset.name,
                config.num_dense_features,
                config.num_sparse_features,
                config.embedding_dim,
                config.bottom_mlp,
                config.top_mlp,
                round(config.embedding_gigabytes, 2),
            )
        )
    return rows


def test_table2_model_zoo(benchmark):
    rows = benchmark(build_table)
    print()
    print(
        format_table(
            ["model", "dataset", "dense", "sparse", "dim", "bottom MLP", "top MLP", "size GB"],
            rows,
            title="Table II: Recommender Model Architecture and Parameters",
        )
    )
    by_name = {row[0]: row for row in rows}
    # Feature counts from Table II.
    assert by_name["RM2"][2:5] == (13, 26, 16)
    assert by_name["RM3"][2:5] == (13, 26, 64)
    assert by_name["RM4"][2:5] == (1, 21, 16)
    assert by_name["RM1"][2:5] == (1, 3, 16)
    # Model sizes: 2 GB, 63 GB, 0.55 GB, 0.3 GB (within generator tolerance).
    assert by_name["RM2"][7] == pytest.approx(2.0, rel=0.15)
    assert by_name["RM3"][7] == pytest.approx(63.0, rel=0.15)
    assert by_name["RM4"][7] == pytest.approx(0.55, rel=0.25)
    assert by_name["RM1"][7] == pytest.approx(0.3, rel=0.25)
    # Sparse parameter totals (rows): 33.8M / 266M / 9.3M / 5.1M.
    assert RM2.dataset.total_rows == pytest.approx(33.8e6, rel=0.02)
    assert RM3.dataset.total_rows == pytest.approx(266e6, rel=0.02)
    assert RM4.dataset.total_rows == pytest.approx(9.3e6, rel=0.02)
    assert RM1.dataset.total_rows == pytest.approx(5.1e6, rel=0.02)
