"""Fused µ-batch execution on the Figure 18 config: parity + step time.

Hotline's acceleration phase trains every mini-batch as a popular and a
non-popular µ-batch.  The fused execution path (PR 5, default on) runs the
two µ-batches through **one** embedding gather and **one** scatter per
table instead of two of each, with per-µ-batch MLP passes untouched — the
update is **bit-identical** to the sequential two-pass schedule (asserted
here end-to-end, and enforced by ``tests/core/test_fused_microbatch.py``).

The step-time claim is bounded by Amdahl: on the Figure 18 config the MLP
and interaction passes dominate (~85 % of a step under cProfile), so
halving the sparse path's kernel launches moves the end-to-end time by a
few percent at best.  This benchmark measures interleaved per-step best-of
timing and records the measured ratio in ``BENCH_sparse_path.json`` so the
trajectory is tracked on quiet CI hardware.  The bit-identity assertions
always run; the wall-clock non-regression gate is enforced only when
``BENCH_STRICT`` is set (the nightly job), because the measured ratio
(~0.99-1.02x) sits within shared-runner noise of any tight threshold —
a tier-1 PR gate would be a coin flip on a noisy neighbour.
"""

import os
import time

import numpy as np

from benchmarks.figutils import record_bench
from repro.core.accelerator import HotlineAccelerator
from repro.core.eal import EALConfig
from repro.core.pipeline import HotlineTrainer
from repro.data import MiniBatchLoader, generate_click_log
from repro.models import RM2
from repro.models.dlrm import DLRM

#: The fused path must not regress the Figure 18 step time beyond noise.
#: Ratcheted 1.05 -> 1.04 once interleaved timing alternated the A/B order
#: per round (killing the warm-cache bias that inflated the bound), then
#: 1.04 -> 1.03 with the PR 7 packed dense path: the fused step now beats
#: sequential outright (~0.93-1.00x recorded).  Tightened 1.03 -> 1.02 with
#: the PR 10 single-pass interaction + fused loss epilogue: the dense work
#: both contenders share shrank (~1.1x+ step speedup), so the fused path's
#: relative overhead bound keeps ratcheting toward 1.0 as ROADMAP item 4
#: asks.
MAX_SLOWDOWN = 1.02


def make_trainer(config, log, fused):
    accelerator = HotlineAccelerator(
        row_bytes=config.embedding_dim * 4,
        eal_config=EALConfig(size_bytes=1 << 17, ways=16),
    )
    trainer = HotlineTrainer(
        DLRM(config, seed=13), accelerator, lr=0.3, sample_fraction=0.25, fused=fused
    )
    trainer.learning_phase(MiniBatchLoader(log, batch_size=256))
    return trainer


def test_fused_step_matches_and_does_not_regress(benchmark):
    config = RM2.scaled(max_rows_per_table=1200, samples_per_epoch=3072)
    log = generate_click_log(config.dataset, 3072, seed=41)
    batches = list(MiniBatchLoader(log, batch_size=256))

    fused = make_trainer(config, log, fused=True)
    sequential = make_trainer(config, log, fused=False)

    # Bit-identity first (one full epoch): losses and every parameter.
    fused_losses = [fused.train_step(batch)[0] for batch in batches]
    sequential_losses = [sequential.train_step(batch)[0] for batch in batches]
    assert fused_losses == sequential_losses
    fused_state = fused.model.state_snapshot()
    for key, value in sequential.model.state_snapshot().items():
        np.testing.assert_array_equal(fused_state[key], value, err_msg=key)

    # Interleaved per-step best-of timing: the minimum of each individual
    # step across rounds filters background-noise spikes far better than
    # whole-epoch minima.  The A/B order flips every round so neither
    # contender systematically inherits the other's warm caches.
    rounds = 8
    fused_steps = np.full(len(batches), np.inf)
    sequential_steps = np.full(len(batches), np.inf)
    for round_index in range(rounds):
        for i, batch in enumerate(batches):
            contenders = [
                (fused, fused_steps),
                (sequential, sequential_steps),
            ]
            if round_index % 2:
                contenders.reverse()
            for trainer, steps in contenders:
                start = time.perf_counter()
                trainer.train_step(batch)
                steps[i] = min(steps[i], time.perf_counter() - start)
    best_fused = float(fused_steps.sum())
    best_sequential = float(sequential_steps.sum())
    benchmark.pedantic(
        lambda: [fused.train_step(batch) for batch in batches], rounds=1, iterations=1
    )
    speedup = best_sequential / best_fused
    print(
        f"\nfig18 epoch ({len(batches)} steps): sequential "
        f"{best_sequential * 1e3:.1f} ms, fused {best_fused * 1e3:.1f} ms, "
        f"speedup {speedup:.3f}x (bit-identical losses)"
    )
    strict = bool(os.environ.get("BENCH_STRICT"))
    record_bench(
        "fused_microbatch_step_fig18",
        config="RM2.scaled(1200) batch=256, 26 tables, fused vs sequential epoch",
        seconds=best_fused / len(batches),
        speedup=speedup,
        gate=1.0 / MAX_SLOWDOWN,
        enforced=strict,
    )
    if strict:
        assert best_fused <= best_sequential * MAX_SLOWDOWN
