"""Figure 24 — Hotline vs ScratchPipe-Ideal (lookahead prefetch cache).

Paper claim: ScratchPipe-Ideal (with optimistically relaxed RAW hazards)
matches Hotline on a single GPU, but as GPUs scale it keeps paying the
embedding all-to-all, giving Hotline an average ~1.2x advantage at 4 GPUs.
"""

from benchmarks.figutils import BATCH_PER_GPU, WORKLOADS, cost_model, geomean
from repro.analysis.report import format_table
from repro.baselines import ScratchPipeIdeal
from repro.core import HotlineScheduler


def build_rows():
    rows = []
    for label, config in WORKLOADS:
        for gpus in (1, 2, 4):
            costs = cost_model(config, gpus=gpus)
            batch = gpus * BATCH_PER_GPU
            speedup = HotlineScheduler(costs).speedup_over(ScratchPipeIdeal(costs), batch)
            rows.append((label, gpus, round(speedup, 2)))
    return rows


def test_fig24_hotline_vs_scratchpipe_ideal(benchmark):
    rows = benchmark(build_rows)
    print()
    print(
        format_table(
            ["dataset", "GPUs", "Hotline speedup over ScratchPipe-Ideal"],
            rows,
            title="Figure 24: Hotline vs ScratchPipe-Ideal",
        )
    )
    one_gpu = [r[2] for r in rows if r[1] == 1]
    four_gpu = [r[2] for r in rows if r[1] == 4]
    # Near-parity on one GPU (no all-to-all to eliminate).
    assert all(0.85 <= s <= 1.25 for s in one_gpu)
    # A clear but modest advantage at 4 GPUs (paper: ~1.2x average).
    assert 1.0 < geomean(four_gpu) < 1.5
    assert geomean(four_gpu) > geomean(one_gpu)
