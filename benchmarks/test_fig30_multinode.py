"""Figure 30 — multi-node scaling on the large synthetic models.

Paper claims: SYN-M1 (196 GB) only fits HugeCTR at 4 nodes (16 V100s) and
SYN-M2 (390 GB) does not fit at all, while Hotline trains both at every node
count; where both run, Hotline is ~1.9x faster by eliminating the inter-node
all-to-all that consumes >50 % of GPU-only training time.
"""

from benchmarks.figutils import BATCH_PER_GPU, cost_model
from repro.analysis.report import format_table
from repro.baselines import HugeCTRGPUOnly
from repro.core import HotlineScheduler
from repro.models import SYN_M1, SYN_M2


def build_rows():
    rows = []
    for config in (SYN_M1, SYN_M2):
        for nodes in (1, 2, 4):
            costs = cost_model(config, gpus=4, nodes=nodes)
            batch = 4 * nodes * BATCH_PER_GPU
            hotline_time = HotlineScheduler(costs).step_time(batch)
            hugectr = HugeCTRGPUOnly(costs)
            if hugectr.is_feasible():
                speedup = round(hugectr.step_time(batch) / hotline_time, 2)
                a2a = round(hugectr.breakdown(batch).get("alltoall", 0.0), 2)
                rows.append((config.name, nodes, "ok", speedup, a2a))
            else:
                rows.append((config.name, nodes, "OOM", None, None))
    return rows


def test_fig30_multinode_synthetic_models(benchmark):
    rows = benchmark(build_rows)
    print()
    print(
        format_table(
            ["model", "nodes", "HugeCTR", "Hotline speedup", "HugeCTR a2a frac"],
            [(m, n, s, x or "-", a or "-") for m, n, s, x, a in rows],
            title="Figure 30: multi-node scaling (SYN-M1 / SYN-M2)",
        )
    )
    by_key = {(m, n): (s, x, a) for m, n, s, x, a in rows}
    # SYN-M1 fits only at 4 nodes; SYN-M2 never fits (paper Section VII-H).
    assert by_key[("SYN-M1", 1)][0] == "OOM"
    assert by_key[("SYN-M1", 2)][0] == "OOM"
    assert by_key[("SYN-M1", 4)][0] == "ok"
    assert all(by_key[("SYN-M2", n)][0] == "OOM" for n in (1, 2, 4))
    # Where both run, Hotline wins by a healthy margin (paper: 1.89x), and
    # the all-to-all is a large share of HugeCTR's iteration.
    status, speedup, a2a = by_key[("SYN-M1", 4)]
    assert 1.3 < speedup < 2.6
    assert a2a > 0.3
