"""Figure 5 — training-time breakdown of multi-node GPU-only training.

Paper claim: with 100 Gbit/s InfiniBand between nodes (vs 2400 Gbit/s NVLink
within a node) the communication share grows with node count and exceeds
50 % of training time at 2-4 nodes for the Criteo datasets.
"""

from benchmarks.figutils import BATCH_PER_GPU, cost_model
from repro.analysis.breakdown import normalised_breakdown
from repro.analysis.report import format_breakdown
from repro.baselines import HugeCTRGPUOnly
from repro.models import RM2, RM3


def build_breakdowns():
    result = {}
    for label, config in [("Criteo Kaggle", RM2), ("Criteo Terabyte", RM3)]:
        for nodes in (1, 2, 4):
            mode = HugeCTRGPUOnly(cost_model(config, gpus=4, nodes=nodes))
            if not mode.is_feasible():
                continue
            batch = 4 * nodes * BATCH_PER_GPU
            result[(label, nodes)] = normalised_breakdown(mode.step_timeline(batch))
    return result


def comm_share(breakdown):
    return breakdown["alltoall"] + breakdown["comm"]


def test_fig05_multi_node_gpu_only_breakdown(benchmark):
    breakdowns = benchmark(build_breakdowns)
    print()
    for (label, nodes), breakdown in breakdowns.items():
        print(format_breakdown(f"Figure 5 - {label}, {nodes} node(s)", breakdown))
        print()

    for label in ("Criteo Kaggle", "Criteo Terabyte"):
        shares = [
            comm_share(breakdowns[(label, nodes)])
            for nodes in (1, 2, 4)
            if (label, nodes) in breakdowns
        ]
        # Communication share grows monotonically with node count.
        assert all(b >= a for a, b in zip(shares, shares[1:], strict=False)), label
    # At 4 nodes the communication approaches/exceeds half the iteration.
    assert comm_share(breakdowns[("Criteo Terabyte", 4)]) > 0.45
    assert comm_share(breakdowns[("Criteo Kaggle", 4)]) > 0.3
