"""Figure 22 — Hotline vs HugeCTR (GPU-only) on Criteo Kaggle and Terabyte.

Paper claims: (1) HugeCTR cannot fit Criteo Terabyte in fewer than four
16 GB GPUs (OOM), while Hotline trains it on a single GPU; (2) where both
run, Hotline is modestly faster (~1.13x) because it eliminates the
embedding all-to-all.
"""

from benchmarks.figutils import BATCH_PER_GPU, cost_model
from repro.analysis.report import format_table
from repro.baselines import HugeCTRGPUOnly
from repro.core import HotlineScheduler
from repro.models import RM2, RM3


def build_rows():
    rows = []
    for label, config in [("Criteo Kaggle", RM2), ("Criteo Terabyte", RM3)]:
        for gpus in (1, 2, 4):
            costs = cost_model(config, gpus=gpus)
            batch = gpus * BATCH_PER_GPU
            hotline_time = HotlineScheduler(costs).step_time(batch)
            hugectr = HugeCTRGPUOnly(costs)
            if hugectr.is_feasible():
                rows.append((label, gpus, "ok", round(hugectr.step_time(batch) / hotline_time, 2)))
            else:
                rows.append((label, gpus, "OOM", None))
    return rows


def test_fig22_hotline_vs_hugectr(benchmark):
    rows = benchmark(build_rows)
    print()
    print(
        format_table(
            ["dataset", "GPUs", "HugeCTR", "Hotline speedup over HugeCTR"],
            [(l, g, s, x if x is not None else "-") for l, g, s, x in rows],
            title="Figure 22: Hotline vs HugeCTR (GPU-only)",
        )
    )
    by_key = {(l, g): (s, x) for l, g, s, x in rows}
    # Criteo Terabyte OOMs below 4 GPUs and fits at 4 (paper Section VII-C).
    assert by_key[("Criteo Terabyte", 1)][0] == "OOM"
    assert by_key[("Criteo Terabyte", 2)][0] == "OOM"
    assert by_key[("Criteo Terabyte", 4)][0] == "ok"
    # Criteo Kaggle fits everywhere.
    assert all(by_key[("Criteo Kaggle", g)][0] == "ok" for g in (1, 2, 4))
    # Where both run, Hotline is equal-or-faster, by a modest factor
    # (paper: ~1.13x) — not the multi-x gains seen against the hybrids.
    speedups = [x for (_l, _g), (s, x) in by_key.items() if s == "ok"]
    assert all(0.95 <= x <= 1.6 for x in speedups)
    assert max(speedups) > 1.05
