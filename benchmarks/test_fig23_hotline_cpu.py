"""Figure 23 — Hotline accelerator vs a CPU-based Hotline implementation.

Paper claim: driving the same µ-batch schedule from the CPU (multi-process
segregation + gather) stalls the GPUs and leaves up to ~3.5x performance on
the table relative to the Hotline accelerator.
"""

from benchmarks.figutils import BATCH_PER_GPU, WORKLOADS, cost_model
from repro.analysis.report import format_table
from repro.baselines import HotlineCPU
from repro.core import HotlineScheduler


def build_rows():
    rows = []
    for label, config in WORKLOADS:
        for gpus in (1, 2, 4):
            costs = cost_model(config, gpus=gpus)
            batch = gpus * BATCH_PER_GPU
            speedup = HotlineScheduler(costs).speedup_over(HotlineCPU(costs), batch)
            rows.append((label, gpus, round(speedup, 2)))
    return rows


def test_fig23_accelerator_vs_cpu_hotline(benchmark):
    rows = benchmark(build_rows)
    print()
    print(
        format_table(
            ["dataset", "GPUs", "Hotline-Acc speedup over Hotline-CPU"],
            rows,
            title="Figure 23: accelerator vs CPU-based segregation/gather",
        )
    )
    speedups = [row[2] for row in rows]
    # The accelerator always wins, by up to a few x but never absurdly.
    assert all(s >= 1.0 for s in speedups)
    assert max(speedups) > 1.8
    assert max(speedups) < 4.5
    # The gap is largest for the lookup-heavy Criteo-style datasets.
    criteo_4gpu = next(r[2] for r in rows if r[0] == "Criteo Kaggle" and r[1] == 4)
    taobao_4gpu = next(r[2] for r in rows if r[0] == "Taobao Alibaba" and r[1] == 4)
    assert criteo_4gpu > taobao_4gpu
