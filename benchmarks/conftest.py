"""Shared fixtures and helpers for the figure/table benchmark harness.

Every module in this directory regenerates one table or figure of the paper.
Each benchmark both *measures* (via pytest-benchmark) the computation that
produces the figure's data and *prints* the regenerated rows/series so they
can be compared against the paper (run with ``-s`` to see them).  Assertions
encode the figure's qualitative claim — who wins, by roughly what factor,
where the crossovers fall.
"""

from __future__ import annotations

import pytest

from benchmarks.figutils import WORKLOADS


@pytest.fixture(scope="session")
def workloads():
    """(label, ModelConfig) pairs for RM1-RM4."""
    return WORKLOADS
