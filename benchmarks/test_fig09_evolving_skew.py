"""Figure 9 — evolving access skew across days (Criteo Terabyte, table 20).

Paper claim: the set of popular embeddings drifts as user behaviour changes
day to day, so a static offline profile steadily loses coverage — the
motivation for Hotline's online learning phase and periodic re-calibration.
"""

from repro.analysis.report import format_series
from repro.data.skew import EvolvingSkewGenerator, access_histogram, top_k_overlap
from repro.models import RM3

DAYS = [0, 1, 2, 3, 4, 5, 6]
TABLE = 0  # the largest table of the scaled stand-in plays table 20's role
TOP_K = 64


def day_overlaps():
    config = RM3.scaled(max_rows_per_table=4000)
    generator = EvolvingSkewGenerator(config.dataset, drift_per_day=0.15, seed=3)
    base = generator.day(0, 8000)
    base_hist = access_histogram(base.sparse, config.dataset.rows_per_table)[TABLE]
    overlaps = []
    for day in DAYS:
        log = generator.day(day, 8000)
        hist = access_histogram(log.sparse, config.dataset.rows_per_table)[TABLE]
        overlaps.append(top_k_overlap(base_hist, hist, TOP_K))
    return overlaps


def test_fig09_hot_set_drifts_across_days(benchmark):
    overlaps = benchmark.pedantic(day_overlaps, rounds=1, iterations=1)
    print()
    print(
        format_series(
            "Figure 9: overlap of day-0 hot set with later days (top-64 rows)",
            DAYS,
            overlaps,
            x_label="day",
            y_label="hot-set overlap",
        )
    )
    assert overlaps[0] == 1.0
    # The overlap decays: a static day-0 profile misses a growing share of
    # the hot set as days pass.
    assert overlaps[-1] < overlaps[1]
    assert overlaps[-1] < 0.9
    # But consecutive days stay correlated (the drift is gradual).
    assert overlaps[1] > 0.5
