"""Figure 20 — per-iteration latency breakdown across frameworks.

Paper claim: the hybrid baselines spend most of their iteration in
CPU-side embedding work and CPU-GPU communication; Hotline removes the
CPU-GPU communication for the popular µ-batch and hides the parameter
gathering for the non-popular one, leaving a compute-dominated iteration
with only a small overhead slice (online profiling).
"""

from benchmarks.figutils import BATCH_PER_GPU, WORKLOADS, cost_model
from repro.analysis.breakdown import embedding_related_fraction, normalised_breakdown
from repro.analysis.report import format_breakdown
from repro.baselines import FAE, HybridCPUGPU, XDLParameterServer
from repro.core import HotlineScheduler

FRAMEWORKS = [
    ("XDL", XDLParameterServer),
    ("Intel DLRM", HybridCPUGPU),
    ("FAE", FAE),
    ("Hotline", HotlineScheduler),
]


def build_breakdowns():
    result = {}
    for label, config in WORKLOADS:
        costs = cost_model(config, gpus=4)
        for framework, cls in FRAMEWORKS:
            timeline = cls(costs).step_timeline(4 * BATCH_PER_GPU)
            result[(label, framework)] = normalised_breakdown(timeline)
    return result


def test_fig20_latency_breakdown_across_frameworks(benchmark):
    breakdowns = benchmark(build_breakdowns)
    print()
    for (label, framework), breakdown in breakdowns.items():
        if label == "Criteo Terabyte":
            print(format_breakdown(f"Figure 20 - {label} / {framework}", breakdown))
            print()

    for label, _config in WORKLOADS:
        hotline = embedding_related_fraction(breakdowns[(label, "Hotline")])
        hybrid = embedding_related_fraction(breakdowns[(label, "Intel DLRM")])
        xdl = embedding_related_fraction(breakdowns[(label, "XDL")])
        # Hotline's embedding/communication share is far below the hybrids'.
        assert hotline < hybrid, label
        assert hotline < xdl, label
    # For the embedding-heavy Criteo datasets the difference is dramatic.
    for label in ("Criteo Kaggle", "Criteo Terabyte"):
        assert embedding_related_fraction(breakdowns[(label, "Hotline")]) < 0.5
        assert embedding_related_fraction(breakdowns[(label, "Intel DLRM")]) > 0.5
