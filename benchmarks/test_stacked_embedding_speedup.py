"""Cross-table stacked fusion: parity, sparse-path crossover, step time.

PR 6's :class:`~repro.nn.embedding.StackedEmbeddingStore` concatenates all
embedding tables of one model into a single ``(sum_rows, dim)`` buffer so
the fused µ-batch step issues **one** gather and **one** segmented scatter
per *step* instead of per table.  The combined layout is bit-identical to
the per-table path (same per-bucket ``np.add.at`` addition order — see the
module docstring of :mod:`repro.nn.embedding`), which this benchmark
asserts end-to-end before timing anything.

Two measurements:

* **Sparse-path crossover** — gather+pool+scatter alone, swept over
  (tables, batch).  This is where stacking actually pays: measured on the
  single-core container, stacked wins ~2.1-2.7x at 26 tables (the RM2
  shape) and ~3.4-4.6x at 64 tables; even at 8 tables it holds a
  ~1.4-1.7x edge, shrinking toward parity as the per-step work gets too
  small to amortise the stacked key sort.  The 26-table/batch-2048 point
  is gated >= 1.25x under ``BENCH_STRICT``.
* **End-to-end fig18-style step at batch 2048** — Amdahl-capped: the MLP
  and interaction GEMMs dominate the step, so the measured end-to-end
  ratio is ~0.99-1.01x.  That is why ``stacked`` defaults to **False**
  (opt-in knob on DLRM/TBSM): the feature was gated on the end-to-end
  benchmark winning at batch 2048, and it does not — it only wins where
  the sparse path is the bottleneck.  Recorded, not gated, so the artifact
  tracks when a future MLP optimisation shifts the balance.

  Re-measured after PR 7's packed dense path: still ~0.98-1.00x at batch
  2048 — packing trims GEMM-launch overhead, not GEMM FLOPs, so the dense
  share (~90% measured via ``StepOutcome.dense_time_s``) remains the
  bottleneck at large batch and the default stays per-table.  See ROADMAP
  item 4 for the measured crossover ratio this records.
"""

import os
import time

import numpy as np

from benchmarks.figutils import record_bench
from repro.core.accelerator import HotlineAccelerator
from repro.core.eal import EALConfig
from repro.core.pipeline import HotlineTrainer
from repro.data import MiniBatchLoader, generate_click_log
from repro.models import RM2
from repro.models.dlrm import DLRM
from repro.nn.embedding import (
    EmbeddingBag,
    StackedEmbeddingStore,
    stacked_segmented_scatter,
)

#: The stacked sparse path must beat per-table by this factor at the RM2
#: table count (26) and batch 2048 — measured ~1.6x on one core.
MIN_SPARSE_SPEEDUP = 1.25
#: End-to-end the stacked step must stay within noise of per-table.
MAX_STEP_SLOWDOWN = 1.05


def make_trainer(config, log, stacked, batch_size):
    accelerator = HotlineAccelerator(
        row_bytes=config.embedding_dim * 4,
        eal_config=EALConfig(size_bytes=1 << 17, ways=16),
    )
    trainer = HotlineTrainer(
        DLRM(config, seed=13, stacked=stacked),
        accelerator,
        lr=0.3,
        sample_fraction=0.25,
        fused=True,
    )
    trainer.learning_phase(MiniBatchLoader(log, batch_size=batch_size))
    return trainer


def sparse_path_best_of(num_tables, batch_size, *, dim=16, rows=1200, rounds=7):
    """Best-of interleaved times of the two sparse paths, in seconds."""
    rng = np.random.default_rng(num_tables * 100_003 + batch_size)
    def make_tables():
        return [
            EmbeddingBag(rows, dim, np.random.default_rng(t))
            for t in range(num_tables)
        ]

    tables = make_tables()
    store = StackedEmbeddingStore(make_tables())
    sparse = rng.integers(0, rows, size=(batch_size, num_tables, 1))
    half = batch_size // 2
    segments = [np.arange(0, half), np.arange(half, batch_size)]
    grads = rng.standard_normal((batch_size, num_tables, 1, dim))
    segment_ids = np.repeat(np.arange(2), [half, batch_size - half])

    def per_table():
        out = []
        for t in range(num_tables):
            tables[t].weight[sparse[:, t]].sum(axis=1)
            per_segment = []
            for segment in segments:
                flat_idx = sparse[segment][:, t].reshape(-1)
                flat_grad = grads[segment][:, t].reshape(-1, dim)
                unique, inverse = np.unique(flat_idx, return_inverse=True)
                acc = np.zeros((unique.size, dim))
                np.add.at(acc, inverse, flat_grad)
                per_segment.append((unique, acc))
            out.append(per_segment)
        return out

    def stacked():
        block = store.stacked_indices(sparse)
        gathered = store.gather(block)
        _ = [gathered[:, t].sum(axis=1) for t in range(num_tables)]
        return stacked_segmented_scatter(
            block.reshape(-1),
            grads.reshape(-1, dim),
            np.repeat(segment_ids, num_tables),
            2,
            store.offsets,
            dim,
        )

    best = {"per_table": np.inf, "stacked": np.inf}
    for round_index in range(rounds):
        contenders = [("per_table", per_table), ("stacked", stacked)]
        if round_index % 2:
            contenders.reverse()
        for name, fn in contenders:
            start = time.perf_counter()
            fn()
            best[name] = min(best[name], time.perf_counter() - start)
    return best["per_table"], best["stacked"]


def test_stacked_sparse_path_crossover():
    """Where one-gather-one-scatter beats the per-table loop, and by what."""
    strict = bool(os.environ.get("BENCH_STRICT"))
    print("\nstacked sparse-path crossover (gather+pool+scatter, best-of):")
    gated_speedup = None
    for num_tables in (8, 26, 64):
        for batch_size in (256, 2048):
            per_table_s, stacked_s = sparse_path_best_of(num_tables, batch_size)
            speedup = per_table_s / stacked_s
            print(
                f"  T={num_tables:3d} B={batch_size:5d}: per-table "
                f"{per_table_s * 1e3:7.2f} ms, stacked {stacked_s * 1e3:7.2f} ms, "
                f"{speedup:.2f}x"
            )
            if num_tables == 26 and batch_size == 2048:
                gated_speedup = speedup
                record_bench(
                    "stacked_sparse_path_T26",
                    config="26 tables x 1200 rows, dim 16, batch 2048, "
                    "2 segments, stacked vs per-table gather+scatter",
                    seconds=stacked_s,
                    speedup=speedup,
                    gate=MIN_SPARSE_SPEEDUP,
                    enforced=strict,
                )
    if strict:
        assert gated_speedup >= MIN_SPARSE_SPEEDUP


def test_stacked_step_matches_and_records_batch_2048(benchmark):
    config = RM2.scaled(max_rows_per_table=1200, samples_per_epoch=8192)
    log = generate_click_log(config.dataset, 8192, seed=51)
    batch_size = 2048
    batches = list(MiniBatchLoader(log, batch_size=batch_size))

    per_table = make_trainer(config, log, stacked=False, batch_size=batch_size)
    stacked = make_trainer(config, log, stacked=True, batch_size=batch_size)

    # Bit-identity first (one full epoch): losses and every parameter.
    per_table_losses = [per_table.train_step(batch)[0] for batch in batches]
    stacked_losses = [stacked.train_step(batch)[0] for batch in batches]
    assert stacked_losses == per_table_losses
    stacked_state = stacked.model.state_snapshot()
    for key, value in per_table.model.state_snapshot().items():
        np.testing.assert_array_equal(stacked_state[key], value, err_msg=key)

    rounds = 6
    per_table_steps = np.full(len(batches), np.inf)
    stacked_steps = np.full(len(batches), np.inf)
    for round_index in range(rounds):
        for i, batch in enumerate(batches):
            contenders = [
                (per_table, per_table_steps),
                (stacked, stacked_steps),
            ]
            if round_index % 2:
                contenders.reverse()
            for trainer, steps in contenders:
                start = time.perf_counter()
                trainer.train_step(batch)
                steps[i] = min(steps[i], time.perf_counter() - start)
    best_per_table = float(per_table_steps.sum())
    best_stacked = float(stacked_steps.sum())
    benchmark.pedantic(
        lambda: [stacked.train_step(batch) for batch in batches],
        rounds=1,
        iterations=1,
    )
    speedup = best_per_table / best_stacked
    strict = bool(os.environ.get("BENCH_STRICT"))
    print(
        f"\nfig18-style epoch at batch {batch_size} ({len(batches)} steps): "
        f"per-table {best_per_table * 1e3:.1f} ms, stacked "
        f"{best_stacked * 1e3:.1f} ms, speedup {speedup:.3f}x "
        f"(bit-identical losses; Amdahl-capped, stacked stays opt-in)"
    )
    record_bench(
        "stacked_step_fig18_batch2048",
        config="RM2.scaled(1200) batch=2048, 26 tables, stacked vs "
        "per-table fused epoch",
        seconds=best_stacked / len(batches),
        speedup=speedup,
        gate=1.0 / MAX_STEP_SLOWDOWN,
        enforced=strict,
    )
    if strict:
        assert best_stacked <= best_per_table * MAX_STEP_SLOWDOWN
