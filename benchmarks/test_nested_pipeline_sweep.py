"""The fig30n nested-pipelining sweep as a sparse-path artifact entry.

Runs the registry's ``fig30n`` experiment — Hotline's popular/non-popular
split vs nested µ-batch × stage pipelining, swept 8 → 1,536 simulated
devices on the oversubscribed :class:`HierarchicalTopology` — and records
the located crossover in ``BENCH_sparse_path.json`` as an
**informational** entry (no gate: the crossover point is a property of
the modelled hardware constants, not a code-speed claim worth failing CI
over).  ``check_bench_gates.py`` still audits the entry's shape.
"""

import time

from benchmarks.figutils import record_bench
from repro.experiments.registry import run_experiment


def test_nested_pipeline_sweep(benchmark):
    """The sweep reaches >= 1,024 devices and the crossover is in-sweep."""
    start = time.perf_counter()
    data = run_experiment("fig30n")
    elapsed = time.perf_counter() - start
    benchmark(lambda: run_experiment("fig30n"))

    sweep = data["sweep"]
    crossover = data["crossover_devices"]
    largest = max(sweep)
    print(
        f"\nfig30n: crossover at {crossover} devices; at {largest} devices "
        f"nested pipelining is {sweep[largest]['nested_speedup']:.2f}x faster"
    )
    record_bench(
        "nested_pipeline_sweep",
        config=f"devices={sorted(sweep)}, topology=4gpu/nic x 2nic/node x 4:1 spine, "
        f"crossover_devices={crossover}, "
        f"speedup_at_{largest}={sweep[largest]['nested_speedup']:.3f}",
        seconds=elapsed,
    )
    assert largest >= 1024
    assert crossover is not None and crossover <= largest
