"""Footprint + tier traffic benchmarks for the sparse-path artifact.

Two accounting series for ``BENCH_sparse_path.json``:

* ``pending_store_peak_bytes`` — the window-bound invariant as a CI gate:
  driving the lookahead pipeline against a 10M-row (Criteo-Terabyte-class)
  table, the pending store's peak footprint must stay under the
  window-derived bound (cached rows x per-row slab bytes) — never the
  ~10 GB a table-sized buffer would take.  Recorded as a gated speedup
  (``bound / peak``, gate 1.0) so ``check_bench_gates.py`` audits it.
* ``tiered_store_traffic`` — hit/miss/eviction counts and the hit rate of
  :class:`~repro.nn.embedding.TieredEmbeddingStore` under Zipf-skewed
  lookups with the head pinned, tracking the tier's effectiveness across
  commits (informational: the hit rate follows the skew, not a code
  property worth gating).
"""

import time

import numpy as np

from benchmarks.figutils import record_bench
from repro.core.lookahead import CachedEmbeddingPipeline
from repro.nn.embedding import SparseGradient, TieredEmbeddingStore

TABLE_ROWS = 10_000_000
DIM = 8


def test_pending_store_peak_bytes_window_bound(benchmark):
    """Peak pending bytes <= window bound at 10M-row scale, and the gate
    lands in the artifact with the measured headroom."""
    window, staleness, steps = 4, 2, 24
    rng = np.random.default_rng(17)
    # A hot pool makes rows recur within the window so deferral genuinely
    # accumulates (disjoint batches would flush every row as it retires).
    pool = rng.choice(TABLE_ROWS, size=2_000, replace=False)
    batches = [
        np.unique(
            np.concatenate(
                [
                    rng.choice(pool, size=48, replace=False),
                    rng.choice(TABLE_ROWS, size=16, replace=False),
                ]
            )
        ).astype(np.int64)
        for _ in range(steps + window)
    ]
    grads = [
        SparseGradient(rows, rng.normal(size=(rows.size, DIM))) for rows in batches
    ]

    def drive():
        pipe = CachedEmbeddingPipeline(
            (TABLE_ROWS,), window=window, staleness=staleness, pending_store="flat"
        )
        pipe.begin_epoch(iter([[rows] for rows in batches]))
        window_rows = 0
        for rows, grad in zip(batches[:steps], grads[:steps], strict=False):
            pipe.observe(rows.reshape(-1, 1, 1))
            window_rows = max(window_rows, pipe.cached_rows_total + rows.size)
            pipe.defer([grad])
        pipe.begin_epoch(None)
        return pipe, window_rows

    start = time.perf_counter()
    pipe, window_rows = drive()
    elapsed = time.perf_counter() - start
    benchmark(drive)

    per_row_bound = 2 * (DIM * 8 + 8) + 16 + 2 * 8
    bound_bytes = window_rows * per_row_bound
    peak = pipe.peak_pending_bytes
    headroom = bound_bytes / peak
    print(
        f"\npending store @ {TABLE_ROWS} rows, window {window}: peak {peak} B, "
        f"window bound {bound_bytes} B (headroom {headroom:.2f}x)"
    )
    record_bench(
        "pending_store_peak_bytes",
        config=f"rows={TABLE_ROWS}, dim={DIM}, window={window}, "
        f"staleness={staleness}, steps={steps}, peak_bytes={peak}, "
        f"bound_bytes={bound_bytes}",
        seconds=elapsed / steps,
        speedup=headroom,
        gate=1.0,
        enforced=True,
    )
    assert headroom >= 1.0  # the gate the artifact claims
    assert peak < 1_000_000  # nowhere near the table-sized ~10 GB buffer


def test_refcount_footprint_window_bound(benchmark):
    """The window refcounts stay O(window rows) at 10M-row scale.

    Before the compact layout, the lookahead window kept one table-sized
    int32 refcount array — 40 MB for a single Criteo-Terabyte-class
    table, the exact O(table) footprint :class:`FlatPendingStore` was
    built to avoid.  The compact sorted-row layout must track only the
    rows the window actually references (12 bytes each: int64 row +
    int32 count).  Recorded as a gated compaction factor
    (``table_sized_bytes / peak_refcount_bytes``, gate 1.0) so
    ``check_bench_gates.py`` audits it.
    """
    window, steps = 4, 24
    rng = np.random.default_rng(17)
    batches = [
        np.unique(rng.choice(TABLE_ROWS, size=64, replace=False)).astype(np.int64)
        for _ in range(steps + window)
    ]
    grads = [
        SparseGradient(rows, rng.normal(size=(rows.size, DIM))) for rows in batches
    ]

    def drive():
        pipe = CachedEmbeddingPipeline((TABLE_ROWS,), window=window)
        pipe.begin_epoch(iter([[rows] for rows in batches]))
        peak_refcount = 0
        for rows, grad in zip(batches[:steps], grads[:steps], strict=False):
            pipe.observe(rows.reshape(-1, 1, 1))
            peak_refcount = max(peak_refcount, pipe.refcount_bytes)
            # The layout is exactly 12 bytes per *currently cached* row.
            assert pipe.refcount_bytes == pipe.cached_rows_total * 12
            pipe.defer([grad])
        return pipe, peak_refcount

    start = time.perf_counter()
    pipe, peak_refcount = drive()
    elapsed = time.perf_counter() - start
    benchmark(drive)

    table_sized_bytes = TABLE_ROWS * 4  # the retired int32-per-row array
    compaction = table_sized_bytes / peak_refcount
    print(
        f"\nwindow refcounts @ {TABLE_ROWS} rows, window {window}: peak "
        f"{peak_refcount} B vs table-sized {table_sized_bytes} B "
        f"({compaction:.0f}x smaller)"
    )
    record_bench(
        "refcount_footprint_bytes",
        config=f"rows={TABLE_ROWS}, window={window}, steps={steps}, "
        f"peak_refcount_bytes={peak_refcount}, "
        f"table_sized_bytes={table_sized_bytes}",
        seconds=elapsed / steps,
        speedup=compaction,
        gate=1.0,
        enforced=True,
    )
    assert compaction >= 1.0  # the gate the artifact claims
    # O(window): a handful of 64-row batches, nowhere near 40 MB.
    assert peak_refcount < 100_000


def test_tiered_store_traffic(benchmark):
    """Zipf lookups against a tier whose capacity holds the head: most
    traffic hits, the tail churns the LFU pool; counts land in the
    artifact."""
    steps, lookups = 32, 4_096
    rng = np.random.default_rng(29)
    batches = [
        (rng.zipf(1.5, size=lookups) - 1) % TABLE_ROWS for _ in range(steps)
    ]

    def drive():
        tier = TieredEmbeddingStore(
            (TABLE_ROWS,), DIM, hot_bytes=1_024 * DIM * 4
        )
        tier.pin_rows(0, np.arange(256))  # the placement's hot head
        for rows in batches:
            tier.touch(0, rows)
        return tier

    start = time.perf_counter()
    tier = drive()
    elapsed = time.perf_counter() - start
    benchmark(drive)

    print(
        f"\ntiered store @ {TABLE_ROWS} rows: hits {tier.hits}, "
        f"misses {tier.misses}, evictions {tier.evictions}, "
        f"hit rate {tier.hit_rate:.3f}"
    )
    record_bench(
        "tiered_store_traffic",
        config=f"rows={TABLE_ROWS}, dim={DIM}, capacity_rows={tier.capacity_rows}, "
        f"zipf=1.5, steps={steps}, lookups={lookups}, hits={tier.hits}, "
        f"misses={tier.misses}, evictions={tier.evictions}, "
        f"hit_rate={tier.hit_rate:.3f}",
        seconds=elapsed / steps,
    )
    assert tier.hits > tier.misses  # the pinned head absorbs the skew
    assert tier.evictions > 0  # the tail actually churned
    assert tier.resident_rows <= tier.capacity_rows + 256