"""Figure 21 — training throughput (epochs/hour) on 4 GPUs.

Paper claim: Hotline delivers on average ~2.6x the epochs/hour of the
Intel-optimized DLRM baseline, and its advantage grows with mini-batch size.
"""

from benchmarks.figutils import WORKLOADS, cost_model, geomean
from repro.analysis.report import format_table
from repro.baselines import HybridCPUGPU
from repro.core import HotlineScheduler


def build_rows():
    rows = []
    for label, config in WORKLOADS:
        costs = cost_model(config, gpus=4)
        hotline = HotlineScheduler(costs)
        hybrid = HybridCPUGPU(costs)
        for batch in (4096, 16384):
            rows.append(
                (
                    label,
                    batch,
                    hybrid.epochs_per_hour(batch),
                    hotline.epochs_per_hour(batch),
                    hotline.epochs_per_hour(batch) / hybrid.epochs_per_hour(batch),
                )
            )
    return rows


def test_fig21_epochs_per_hour(benchmark):
    rows = benchmark(build_rows)
    print()
    print(
        format_table(
            ["dataset", "batch", "DLRM epochs/h", "Hotline epochs/h", "ratio"],
            [(l, b, round(d, 3), round(h, 3), round(r, 2)) for l, b, d, h, r in rows],
            title="Figure 21: training throughput on 4 GPUs",
        )
    )
    # Hotline always delivers higher throughput.
    assert all(row[4] > 1.0 for row in rows)
    # Average improvement at 4K batch is in the paper's ballpark (~2.6x).
    at_4k = geomean(row[4] for row in rows if row[1] == 4096)
    assert 1.8 < at_4k < 3.5
    # Larger mini-batches widen the gap for the embedding-bound datasets.
    for label in ("Criteo Kaggle", "Criteo Terabyte", "Avazu"):
        small = next(r[4] for r in rows if r[0] == label and r[1] == 4096)
        large = next(r[4] for r in rows if r[0] == label and r[1] == 16384)
        assert large >= small
