"""Audit ``BENCH_sparse_path.json`` for silently-skipped speedup gates.

Benchmarks in this directory record every measurement but only *enforce*
their wall-clock gates where the measurement means something (quiet
hardware via ``BENCH_STRICT``, enough cores for parallel speedups).  That
honesty has a failure mode: a benchmark could measure a speedup below its
own gate, skip the in-test assertion, and the suite would still go green.

This checker closes the loop in CI.  It reads the artifact the benchmark
run just wrote and **fails (exit 1)** for any entry whose measured
``speedup`` sits below its declared ``gate`` while ``enforced`` is false —
i.e. the regression was observed but no assertion guarded it.  Entries
that enforced their gate in-test are trusted (pytest already failed if
they regressed), and entries without a gate are informational.

Usage::

    python benchmarks/check_bench_gates.py [path/to/BENCH_sparse_path.json]

With no argument the default artifact location (or ``BENCH_JSON``) is
used.  A missing artifact is an error — the checker exists to make sure
the benchmarks actually ran.
"""

from __future__ import annotations

import json
import os
import sys


def check(path: str) -> int:
    """Print a per-entry verdict; return the number of unguarded misses."""
    if not os.path.exists(path):
        print(f"error: benchmark artifact not found: {path}", file=sys.stderr)
        return 1
    with open(path) as handle:
        entries = json.load(handle)
    misses = 0
    for entry in entries:
        op = entry.get("op", "?")
        speedup = entry.get("speedup")
        gate = entry.get("gate")
        if gate is None or speedup is None:
            print(f"  {op}: speedup={speedup} (no gate, informational)")
            continue
        enforced = bool(entry.get("enforced"))
        below = speedup < gate
        if below and not enforced:
            misses += 1
            verdict = "FAIL (below gate, assertion was skipped)"
        elif below:
            verdict = "below gate but enforced in-test (pytest already judged it)"
        else:
            verdict = "ok"
        print(
            f"  {op}: speedup={speedup} gate={gate} "
            f"enforced={enforced} -> {verdict}"
        )
    return misses


def main(argv: list[str]) -> int:
    default = os.environ.get("BENCH_JSON") or os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_sparse_path.json",
    )
    path = argv[1] if len(argv) > 1 else default
    print(f"checking benchmark gates in {path}")
    misses = check(path)
    if misses:
        print(
            f"{misses} gated benchmark(s) measured below their gate without "
            "an enforced assertion",
            file=sys.stderr,
        )
        return 1
    print("all gated benchmarks accounted for")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
