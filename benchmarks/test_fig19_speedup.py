"""Figure 19 — Hotline vs XDL, Intel-optimized DLRM, and FAE (1/2/4 GPUs).

Paper claim (geometric means): Hotline is ~3.4x faster than 4-GPU XDL,
~2.2x faster than 4-GPU Intel-optimized DLRM, and ~1.4x faster than FAE;
every framework's bars are normalised to 1-GPU XDL.
"""

from benchmarks.figutils import BATCH_PER_GPU, WORKLOADS, cost_model, geomean
from repro.analysis.report import format_table
from repro.baselines import FAE, HybridCPUGPU, XDLParameterServer
from repro.core import HotlineScheduler


def build_speedups():
    """Per-dataset, per-GPU-count step times normalised to 1-GPU XDL."""
    table = {}
    for label, config in WORKLOADS:
        xdl_1gpu = XDLParameterServer(cost_model(config, gpus=1)).step_time(BATCH_PER_GPU)
        for gpus in (1, 2, 4):
            costs = cost_model(config, gpus=gpus)
            batch = gpus * BATCH_PER_GPU
            # Throughput-normalised speedup over the 1-GPU XDL reference.
            def normalised(mode):
                return (xdl_1gpu / BATCH_PER_GPU) / (mode.step_time(batch) / batch)

            table[(label, gpus)] = {
                "XDL": normalised(XDLParameterServer(costs)),
                "DLRM": normalised(HybridCPUGPU(costs)),
                "FAE": normalised(FAE(costs)),
                "Hotline": normalised(HotlineScheduler(costs)),
            }
    return table


def test_fig19_framework_speedups(benchmark):
    table = benchmark(build_speedups)
    print()
    rows = []
    for (label, gpus), values in table.items():
        rows.append(
            (label, gpus, round(values["XDL"], 2), round(values["DLRM"], 2),
             round(values["FAE"], 2), round(values["Hotline"], 2))
        )
    print(
        format_table(
            ["dataset", "GPUs", "XDL", "Intel DLRM", "FAE", "Hotline"],
            rows,
            title="Figure 19: speedup normalised to 1-GPU XDL",
        )
    )

    # Ranking at 4 GPUs: Hotline is the fastest framework on every dataset
    # and the hybrid (Intel DLRM) always beats the parameter server (XDL).
    for label, _config in WORKLOADS:
        values = table[(label, 4)]
        assert values["Hotline"] > values["FAE"], label
        assert values["Hotline"] > values["DLRM"] > values["XDL"], label
    # FAE's popularity-based placement beats the plain hybrid on the
    # embedding-dominated datasets (its 15 % offline-profiling overhead can
    # erase the gain on the MLP-dominated Taobao workload).
    for label in ("Criteo Kaggle", "Criteo Terabyte", "Avazu"):
        assert table[(label, 4)]["FAE"] > table[(label, 4)]["DLRM"], label

    # Geometric-mean speedups of Hotline over each framework at 4 GPUs.
    over_xdl = geomean(
        table[(label, 4)]["Hotline"] / table[(label, 4)]["XDL"] for label, _ in WORKLOADS
    )
    over_dlrm = geomean(
        table[(label, 4)]["Hotline"] / table[(label, 4)]["DLRM"] for label, _ in WORKLOADS
    )
    over_fae = geomean(
        table[(label, 4)]["Hotline"] / table[(label, 4)]["FAE"] for label, _ in WORKLOADS
    )
    print(
        f"\nGeomean Hotline speedups at 4 GPUs: {over_xdl:.2f}x over XDL "
        f"(paper 3.4x), {over_dlrm:.2f}x over Intel DLRM (paper 2.2x), "
        f"{over_fae:.2f}x over FAE (paper 1.4x)"
    )
    assert 2.5 < over_xdl < 5.5
    assert 1.7 < over_dlrm < 3.5
    assert 1.2 < over_fae < 2.3
