"""Figure 25 — varying the popular : non-popular µ-batch ratio.

Paper claim: the accelerator's parameter gathering for the non-popular
µ-batch stays hidden under the popular µ-batch's GPU execution even when
only ~30 % of inputs are popular; real datasets sit near 75 % popular, far
inside the safe region.
"""

from benchmarks.figutils import cost_model
from repro.analysis.report import format_table
from repro.core import HotlineScheduler
from repro.models import RM3

RATIOS = [0.2, 0.3, 0.4, 0.6, 0.8, 0.9]
BATCH = 4096


def sweep():
    scheduler = HotlineScheduler(cost_model(RM3, gpus=4))
    rows = []
    for ratio in RATIOS:
        plan = scheduler.plan_step(BATCH, hot_fraction=ratio)
        rows.append(
            (
                f"{int(ratio * 100)}% : {int((1 - ratio) * 100)}%",
                round(plan.popular_exec_time * 1e3, 3),
                round(plan.gather_time * 1e3, 3),
                round(plan.exposed_gather_time * 1e3, 3),
                plan.gather_hidden,
            )
        )
    return rows


def test_fig25_popular_ratio_sweep(benchmark):
    rows = benchmark(sweep)
    print()
    print(
        format_table(
            ["popular:non-popular", "GPU popular exec (ms)", "gather (ms)",
             "exposed (ms)", "hidden"],
            rows,
            title="Figure 25: hiding the non-popular gather (Criteo Terabyte, 4K batch)",
        )
    )
    by_ratio = dict(zip(RATIOS, rows, strict=True))
    # At the paper's 3:7 point (30 % popular) the gather is still hidden.
    assert by_ratio[0.3][4] is True or by_ratio[0.3][3] < 0.1 * by_ratio[0.3][1]
    # At realistic ratios (>=60 % popular) it is always hidden.
    for ratio in (0.6, 0.8, 0.9):
        assert by_ratio[ratio][4] is True
    # Gather work shrinks as the popular share grows.
    gathers = [row[2] for row in rows]
    assert all(b <= a + 1e-9 for a, b in zip(gathers, gathers[1:], strict=False))
