"""Batched dense path: parity, fig18 step speedup, dense/sparse share.

PR 7's batched dense execution (:mod:`repro.nn.gemm`) replaces many small
MLP GEMMs with few large ones, in two composable pieces:

* **Segment-packed µ-batch MLPs** — ``fused_loss_and_gradients`` runs the
  bottom MLP, interaction, and top MLP over one contiguous packed block
  instead of once per µ-batch segment (``batched=True``, the default).
* **Replica-stacked sync GEMMs** — in stale-0/sync mode all K replicas
  hold bit-identical weights, so :class:`~repro.core.distributed.
  ShardedHotlineTrainer` stacks the K shards' dense passes into one
  global-batch GEMM per layer (``dense_batching="replica"``, the
  default), turning K·segments small GEMMs into one.

Both are bit-identical to the retained sequential path (the parity grid
in ``tests/core/test_batched_dense.py``; asserted end-to-end here before
timing anything).

Two measurements on the fig18 config (RM2.scaled, batch 256):

* **Sharded fig18 step, K=4 sync** — the headline: replica stacking plus
  segment packing vs the PR 6 per-replica sequential path.  Measured
  ~1.25-1.35x on the single-core container (gated >= 1.15x under
  ``BENCH_STRICT``): per-shard µ-batches are ~32 rows, where BLAS
  efficiency and per-call overhead are worst, so stacking 4 shards x 2
  segments into one 256-row GEMM per layer is exactly the Amdahl lever
  ROADMAP item 4 asked for.
* **Single-trainer fig18 step** — segment packing alone: two ~128-row
  segments per layer are already near BLAS peak, so packing buys only
  the fused bias+ReLU, workspace reuse, and the skipped first-layer
  input-gradient GEMM (~1.0-1.12x, noise-bound).  Recorded with a
  no-regression gate, not a speedup claim.

The dense-time share of each step comes from the new
``StepOutcome.dense_time_s`` split (measured inside the model's dense
section, not inferred from FLOP counts) and is recorded alongside.
"""

import os
import time

import numpy as np

from benchmarks.figutils import record_bench
from repro.core.accelerator import HotlineAccelerator
from repro.core.distributed import ShardedHotlineTrainer
from repro.core.eal import EALConfig
from repro.core.pipeline import HotlineTrainer
from repro.data import MiniBatchLoader, generate_click_log
from repro.models import RM2
from repro.models.dlrm import DLRM

#: The replica-stacked + packed dense path must beat the PR 6 sequential
#: per-replica path by this factor on the sharded fig18 config.
MIN_STACKED_SPEEDUP = 1.15
#: Packing alone (single trainer) must never *lose* to sequential.
MAX_PACKED_SLOWDOWN = 1.05

BATCH_SIZE = 256
NUM_SHARDS = 4
ROUNDS = 4


def fig18_workload():
    config = RM2.scaled(max_rows_per_table=1200, samples_per_epoch=3072)
    log = generate_click_log(config.dataset, 3072, seed=41)
    return config, log


def make_single_trainer(config, log, *, batched):
    accelerator = HotlineAccelerator(
        row_bytes=config.embedding_dim * 4,
        eal_config=EALConfig(size_bytes=1 << 17, ways=16),
    )
    trainer = HotlineTrainer(
        DLRM(config, seed=13, batched=batched),
        accelerator,
        lr=0.3,
        sample_fraction=0.25,
    )
    trainer.bind(MiniBatchLoader(log, batch_size=BATCH_SIZE))
    return trainer


def make_sharded_trainer(config, log, *, batched, dense_batching):
    trainer = ShardedHotlineTrainer(
        DLRM(config, seed=13, batched=batched),
        NUM_SHARDS,
        lr=0.3,
        sample_fraction=0.25,
        dense_batching=dense_batching,
    )
    trainer.bind(MiniBatchLoader(log, batch_size=BATCH_SIZE))
    return trainer


def timed_epoch(trainer, batches):
    """One epoch: (per-step wall times, summed dense_time_s)."""
    walls = np.empty(len(batches))
    dense = 0.0
    for i, batch in enumerate(batches):
        start = time.perf_counter()
        outcome = trainer.run_step(batch)
        walls[i] = time.perf_counter() - start
        dense += outcome.dense_time_s
    return walls, dense


def interleaved_best(trainers, batches, rounds=ROUNDS):
    """Best-of per-step walls and the best round's dense share, per name."""
    names = list(trainers)
    best = {name: np.full(len(batches), np.inf) for name in names}
    dense = {name: 0.0 for name in names}
    for round_index in range(rounds):
        ordered = names if round_index % 2 == 0 else list(reversed(names))
        for name in ordered:
            walls, dense_s = timed_epoch(trainers[name], batches)
            improved = walls < best[name]
            best[name][improved] = walls[improved]
            if round_index == 0:
                dense[name] = dense_s
    return best, dense


def assert_sharded_parity(reference, stacked, batch):
    """One step on each trainer must agree bit-for-bit."""
    loss_ref = reference.run_step(batch).loss
    loss_stacked = stacked.run_step(batch).loss
    assert loss_stacked == loss_ref
    assert stacked.replica_drift() == 0.0
    state_ref = reference.replicas[0].model.state_snapshot()
    state_stacked = stacked.replicas[0].model.state_snapshot()
    for key, value in state_ref.items():
        np.testing.assert_array_equal(state_stacked[key], value, err_msg=key)


def test_replica_stacked_dense_path_fig18(benchmark):
    """K=4 sync sharded step: replica-stacked + packed vs PR 6 sequential."""
    config, log = fig18_workload()
    sequential = make_sharded_trainer(
        config, log, batched=False, dense_batching="per-replica"
    )
    stacked = make_sharded_trainer(config, log, batched=True, dense_batching="replica")
    batches = list(MiniBatchLoader(log, batch_size=BATCH_SIZE))

    assert_sharded_parity(sequential, stacked, batches[0])

    best, dense = interleaved_best(
        {"sequential": sequential, "stacked": stacked}, batches[1:]
    )
    benchmark.pedantic(
        lambda: [stacked.run_step(batch) for batch in batches[1:]],
        rounds=1,
        iterations=1,
    )
    seq_s = float(best["sequential"].sum())
    stacked_s = float(best["stacked"].sum())
    speedup = seq_s / stacked_s
    share = dense["stacked"] / max(stacked_s, 1e-12)
    strict = bool(os.environ.get("BENCH_STRICT"))
    steps = len(batches) - 1
    print(
        f"\nsharded fig18 step (K={NUM_SHARDS} sync, batch {BATCH_SIZE}, "
        f"{steps} steps): sequential {seq_s / steps * 1e3:.2f} ms, "
        f"replica-stacked {stacked_s / steps * 1e3:.2f} ms, speedup "
        f"{speedup:.3f}x (bit-identical; dense share ~{share:.0%})"
    )
    record_bench(
        "dense_path_fig18",
        config=f"RM2.scaled(1200) batch={BATCH_SIZE}, K={NUM_SHARDS} sync "
        "shards, replica-stacked packed GEMMs vs per-replica sequential",
        seconds=stacked_s / steps,
        speedup=speedup,
        gate=MIN_STACKED_SPEEDUP,
        enforced=strict,
    )
    record_bench(
        "dense_share_fig18",
        config=f"RM2.scaled(1200) batch={BATCH_SIZE}, K={NUM_SHARDS} sync "
        "shards: measured dense (MLP+interaction) share of the "
        "replica-stacked step, from StepOutcome.dense_time_s",
        seconds=dense["stacked"] / steps,
        speedup=None,
        gate=None,
        enforced=None,
    )
    if strict:
        assert speedup >= MIN_STACKED_SPEEDUP


def test_packed_single_trainer_no_regression():
    """Segment packing alone must hold the line on the single-trainer step."""
    config, log = fig18_workload()
    sequential = make_single_trainer(config, log, batched=False)
    packed = make_single_trainer(config, log, batched=True)
    batches = list(MiniBatchLoader(log, batch_size=BATCH_SIZE))

    loss_seq = sequential.run_step(batches[0]).loss
    loss_packed = packed.run_step(batches[0]).loss
    assert loss_packed == loss_seq

    best, dense = interleaved_best(
        {"sequential": sequential, "packed": packed}, batches[1:]
    )
    seq_s = float(best["sequential"].sum())
    packed_s = float(best["packed"].sum())
    speedup = seq_s / packed_s
    share = dense["packed"] / max(packed_s, 1e-12)
    strict = bool(os.environ.get("BENCH_STRICT"))
    steps = len(batches) - 1
    print(
        f"\nsingle-trainer fig18 step (batch {BATCH_SIZE}, {steps} steps): "
        f"sequential {seq_s / steps * 1e3:.2f} ms, packed "
        f"{packed_s / steps * 1e3:.2f} ms, speedup {speedup:.3f}x "
        f"(dense share ~{share:.0%})"
    )
    record_bench(
        "packed_dense_single_fig18",
        config=f"RM2.scaled(1200) batch={BATCH_SIZE}, single trainer, "
        "segment-packed vs sequential dense pass (no-regression guard)",
        seconds=packed_s / steps,
        speedup=speedup,
        gate=1.0 / MAX_PACKED_SLOWDOWN,
        enforced=strict,
    )
    if strict:
        assert packed_s <= seq_s * MAX_PACKED_SLOWDOWN
