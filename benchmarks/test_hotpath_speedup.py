"""Hot-path microbenchmarks: vectorised embedding + classification speedups.

The vectorised :class:`~repro.nn.embedding.EmbeddingBag` (single gather +
segment-sum scatter) and the bitmap-based
:func:`~repro.core.classifier.split_minibatch` replaced per-sample Python
loops and per-step ``np.isin`` scans.  These benchmarks measure both paths
against the retained loop references on an RM1-sized (Taobao Alibaba)
mini-batch of 2048 inputs and assert the speedup that justifies the
refactor, recording the vectorised throughput for the bench trajectory.
"""

import time

import numpy as np

from benchmarks.figutils import record_bench
from repro.core.classifier import split_minibatch
from repro.core.hotset import HotSetIndex
from repro.data import MiniBatch, generate_click_log
from repro.models import RM1
from repro.nn.embedding import EmbeddingBag, reference_backward, reference_forward
from repro.reference import split_minibatch_reference

#: Paper-scale mini-batch for the functional trainer benchmarks.
BATCH_SIZE = 2048

#: Minimum speedup of the vectorised path over the per-sample loop path.
MIN_SPEEDUP = 5.0

#: Scaled tables for the embedding benchmark (full-size RM1 weights would
#: need ~0.5 GB); the speedup comes from removing the per-sample loop, not
#: from the table size.
CONFIG = RM1.scaled(max_rows_per_table=20_000)

#: The classification benchmark runs at *full* RM1 scale (4.1M-row item
#: table): only indices and bitmaps are materialised, and the whole point of
#: HotSetIndex is that ``np.isin``'s per-step cost grows with the hot-set
#: size while the bitmap lookup does not.
FULL_CONFIG = RM1


def best_of(fn, repeats=3):
    """Smallest wall-clock of ``repeats`` runs (noise-robust timing)."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def make_workload(seed=23):
    log = generate_click_log(CONFIG.dataset, BATCH_SIZE, seed=seed)
    batch = MiniBatch(dense=log.dense, sparse=log.sparse, labels=log.labels)
    rng = np.random.default_rng(seed)
    bag = EmbeddingBag(
        CONFIG.dataset.rows_per_table[0], CONFIG.embedding_dim, np.random.default_rng(0)
    )
    indices = batch.sparse[:, 0, :]
    grad_output = rng.normal(size=(BATCH_SIZE, CONFIG.embedding_dim))
    hot_sets = [
        np.sort(rng.choice(rows, size=max(1, rows // 2), replace=False))
        for rows in CONFIG.dataset.rows_per_table
    ]
    return batch, bag, indices, grad_output, hot_sets


def test_embedding_forward_backward_speedup(benchmark):
    _batch, bag, indices, grad_output, _hot_sets = make_workload()

    def vectorized():
        bag.forward(indices)
        return bag.backward(grad_output)

    def looped():
        reference_forward(bag.weight, indices)
        return reference_backward(indices, grad_output, bag.dim)

    # Parity first: a fast-but-wrong kernel must not pass the benchmark.
    np.testing.assert_array_equal(vectorized().values, looped().values)

    loop_time = best_of(looped)
    fast_time = best_of(vectorized)
    benchmark(vectorized)
    speedup = loop_time / fast_time
    print(
        f"\nembedding fwd+bwd @ batch {BATCH_SIZE}: loop {loop_time * 1e3:.2f} ms, "
        f"vectorized {fast_time * 1e3:.2f} ms, speedup {speedup:.1f}x"
    )
    record_bench(
        "embedding_forward_backward",
        config=f"RM1.scaled(20k) batch={BATCH_SIZE}, dim={CONFIG.embedding_dim}",
        seconds=fast_time,
        speedup=speedup,
    )
    assert speedup >= MIN_SPEEDUP


def test_split_minibatch_speedup(benchmark):
    log = generate_click_log(FULL_CONFIG.dataset, BATCH_SIZE, seed=23)
    batch = MiniBatch(dense=log.dense, sparse=log.sparse, labels=log.labels)
    rng = np.random.default_rng(23)
    # Hot sets sized like a learning phase's output: an eighth of each table
    # (the paper's 512 MB HBM replica holds millions of rows).
    hot_sets = [
        np.sort(rng.choice(rows, size=max(1, rows // 8), replace=False))
        for rows in FULL_CONFIG.dataset.rows_per_table
    ]
    index = HotSetIndex(hot_sets, rows_per_table=FULL_CONFIG.dataset.rows_per_table)

    def vectorized():
        return split_minibatch(batch, index)

    def looped():
        return split_minibatch_reference(batch, hot_sets)

    np.testing.assert_array_equal(vectorized().popular_mask, looped().popular_mask)

    loop_time = best_of(looped)
    fast_time = best_of(vectorized)
    benchmark(vectorized)
    speedup = loop_time / fast_time
    print(
        f"\nsplit_minibatch @ batch {BATCH_SIZE}, full RM1 tables: "
        f"np.isin {loop_time * 1e3:.2f} ms, bitmap {fast_time * 1e3:.2f} ms, "
        f"speedup {speedup:.0f}x"
    )
    record_bench(
        "split_minibatch_classification",
        config=f"full RM1 tables, batch={BATCH_SIZE}, hot=1/8 of each table",
        seconds=fast_time,
        speedup=speedup,
    )
    assert speedup >= MIN_SPEEDUP
