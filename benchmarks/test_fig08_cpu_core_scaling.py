"""Figure 8 — CPU segregation time vs number of CPU cores.

Paper claim: segregating a 4K-input Criteo Terabyte mini-batch improves only
modestly when adding cores and plateaus beyond ~24 cores, because the work
is bound by parallel memory look-ups rather than compute throughput.
"""

import pytest

from benchmarks.figutils import cost_model
from repro.analysis.report import format_series
from repro.models import RM3

CORE_COUNTS = [1, 2, 4, 8, 16, 24, 32]


def sweep_cores():
    costs = cost_model(RM3, gpus=4)
    return [costs.cpu_segregation_time(4096, cores=cores) for cores in CORE_COUNTS]


def test_fig08_segregation_core_scaling(benchmark):
    times = benchmark(sweep_cores)
    print()
    print(
        format_series(
            "Figure 8: Criteo Terabyte 4K mini-batch segregation",
            CORE_COUNTS,
            [t * 1e3 for t in times],
            x_label="CPU cores",
            y_label="time (ms)",
        )
    )
    # Monotonically non-increasing with cores.
    assert all(b <= a + 1e-12 for a, b in zip(times, times[1:], strict=False))
    # Plateau: 24 -> 32 cores changes nothing.
    assert times[CORE_COUNTS.index(32)] == pytest.approx(times[CORE_COUNTS.index(24)])
    # But the total improvement from 1 to 32 cores is modest (< 4x), i.e. the
    # workload is memory-bound, not compute-bound.
    assert times[0] / times[-1] < 4.0
    assert times[0] / times[-1] > 1.2
