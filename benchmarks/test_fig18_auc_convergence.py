"""Figure 18 / Table V companion — AUC convergence: baseline vs Hotline.

Paper claim: Hotline's µ-batch schedule follows the baseline's training and
test accuracy exactly — the AUC curves coincide because the parameter
updates are identical.
"""

import pytest

from repro.analysis.report import format_table
from repro.core.accelerator import HotlineAccelerator
from repro.core.eal import EALConfig
from repro.core.pipeline import HotlineTrainer, ReferenceTrainer
from repro.data import MiniBatchLoader, generate_click_log
from repro.models import RM2
from repro.models.dlrm import DLRM


def run_convergence():
    config = RM2.scaled(max_rows_per_table=1200, samples_per_epoch=3072)
    log = generate_click_log(config.dataset, 3072, seed=41)
    loader = MiniBatchLoader(log, batch_size=256)
    eval_batch = log.batch(2048, 1024)

    accelerator = HotlineAccelerator(
        row_bytes=config.embedding_dim * 4, eal_config=EALConfig(size_bytes=1 << 17, ways=16)
    )
    hotline = HotlineTrainer(DLRM(config, seed=13), accelerator, lr=0.3, sample_fraction=0.25)
    hotline.learning_phase(loader)
    hotline_result = hotline.train(loader, epochs=2, eval_batch=eval_batch, eval_every=2)

    reference = ReferenceTrainer(DLRM(config, seed=13), lr=0.3)
    reference_result = reference.train(loader, epochs=2, eval_batch=eval_batch, eval_every=2)
    return hotline_result, reference_result


def test_fig18_auc_curves_coincide(benchmark):
    hotline_result, reference_result = benchmark.pedantic(run_convergence, rounds=1, iterations=1)
    rows = [
        (it_b, round(auc_b, 4), round(auc_h, 4))
        for (it_b, auc_b), (_, auc_h) in zip(
            reference_result.auc_history, hotline_result.auc_history, strict=True
        )
    ]
    print()
    print(
        format_table(
            ["iteration", "baseline AUC", "Hotline AUC"],
            rows,
            title="Figure 18: AUC convergence (scaled Criteo Kaggle)",
        )
    )
    # The two curves are identical point-for-point.
    for (it_b, auc_b), (it_h, auc_h) in zip(
        reference_result.auc_history, hotline_result.auc_history, strict=True
    ):
        assert it_b == it_h
        assert auc_h == pytest.approx(auc_b, abs=1e-9)
    # And training actually converges to a useful AUC.
    assert hotline_result.final_metrics["auc"] > 0.6
