"""Table V — accuracy metrics (accuracy / AUC / log-loss), DLRM vs Hotline.

Paper claim: the metrics are *identical* between the baseline and Hotline on
every dataset, because Hotline only reorders inputs within a mini-batch.
"""

import pytest

from repro.analysis.report import format_table
from repro.core.accelerator import HotlineAccelerator
from repro.core.eal import EALConfig
from repro.core.pipeline import HotlineTrainer, ReferenceTrainer
from repro.data import MiniBatchLoader, generate_click_log
from repro.models import RM1, RM2, RM4
from repro.models.dlrm import DLRM
from repro.models.tbsm import TBSM

SCALED = [
    ("Criteo Kaggle", RM2.scaled(max_rows_per_table=800), DLRM),
    ("Taobao Alibaba", RM1.scaled(max_rows_per_table=800), TBSM),
    ("Avazu", RM4.scaled(max_rows_per_table=800), DLRM),
]


def run_all():
    rows = []
    for label, config, model_cls in SCALED:
        log = generate_click_log(config.dataset, 2048, seed=51)
        loader = MiniBatchLoader(log, batch_size=256)
        eval_batch = log.batch(1536, 512)
        accelerator = HotlineAccelerator(
            row_bytes=config.embedding_dim * 4,
            eal_config=EALConfig(size_bytes=1 << 16, ways=16),
        )
        hotline = HotlineTrainer(
            model_cls(config, seed=29), accelerator, lr=0.2, sample_fraction=0.3
        )
        hotline.learning_phase(loader)
        hotline_metrics = hotline.train(loader, epochs=2, eval_batch=eval_batch).final_metrics
        baseline_metrics = (
            ReferenceTrainer(model_cls(config, seed=29), lr=0.2)
            .train(loader, epochs=2, eval_batch=eval_batch)
            .final_metrics
        )
        rows.append((label, baseline_metrics, hotline_metrics))
    return rows


def test_table5_accuracy_parity(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    printable = [
        (
            label,
            round(base["accuracy"] * 100, 2),
            round(base["auc"], 4),
            round(base["logloss"], 4),
            round(hot["accuracy"] * 100, 2),
            round(hot["auc"], 4),
            round(hot["logloss"], 4),
        )
        for label, base, hot in rows
    ]
    print()
    print(
        format_table(
            ["dataset", "DLRM acc%", "DLRM AUC", "DLRM logloss",
             "Hotline acc%", "Hotline AUC", "Hotline logloss"],
            printable,
            title="Table V: accuracy metrics, baseline vs Hotline (scaled datasets)",
        )
    )
    for label, base, hot in rows:
        assert hot["accuracy"] == pytest.approx(base["accuracy"], abs=1e-9), label
        assert hot["auc"] == pytest.approx(base["auc"], abs=1e-9), label
        assert hot["logloss"] == pytest.approx(base["logloss"], abs=1e-9), label
