"""Figure 27 — EAL capacity sweep (1 MB - 16 MB).

Paper claim: for the highly skewed Criteo/Avazu datasets a small (2 MB)
logger already captures the popular indices; the less-skewed Taobao dataset
benefits from more capacity, with diminishing returns above ~4 MB.

The sweep below scales the logger capacity together with the scaled-down
datasets (the paper's absolute MB sizes correspond to its full-size tables);
the *shape* — monotone improvement with capacity and saturation — is the
reproduced claim.
"""

from repro.analysis.report import format_table
from repro.core.eal import EALConfig, EmbeddingAccessLogger
from repro.core.lookup_engine import LookupEngineArray
from repro.data import generate_click_log
from repro.models import RM1, RM2, RM3, RM4

SCALED = [
    ("Criteo Kaggle", RM2.scaled(max_rows_per_table=1500)),
    ("Taobao Alibaba", RM1.scaled(max_rows_per_table=1500)),
    ("Criteo Terabyte", RM3.scaled(max_rows_per_table=1500)),
    ("Avazu", RM4.scaled(max_rows_per_table=1500)),
]

#: Logger capacities in entries (scaled analogues of 1-16 MB).
CAPACITIES = [256, 512, 1024, 2048, 4096]
TRAIN_SAMPLES = 3000
EVAL_SAMPLES = 1500


def sweep():
    array = LookupEngineArray(64)
    table = {}
    for label, config in SCALED:
        log = generate_click_log(config.dataset, TRAIN_SAMPLES + EVAL_SAMPLES, seed=61)
        train = log.sparse[:TRAIN_SAMPLES]
        evaluation = log.sparse[TRAIN_SAMPLES:]
        fractions = []
        for capacity in CAPACITIES:
            eal = EmbeddingAccessLogger(EALConfig(size_bytes=capacity * 2, ways=16), seed=0)
            eal.access_batch(train)
            hot = eal.hot_indices(config.num_sparse_features)
            fractions.append(float(array.classify_with_hot_sets(evaluation, hot).mean()))
        table[label] = fractions
    return table


def test_fig27_eal_capacity_sweep(benchmark):
    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    rows = [[label] + [round(100 * f, 1) for f in fractions] for label, fractions in table.items()]
    print(
        format_table(
            ["dataset"] + [str(c) for c in CAPACITIES],
            rows,
            title="Figure 27: % popular inputs vs EAL capacity (entries)",
        )
    )
    for label, fractions in table.items():
        # More capacity never hurts.
        assert all(b >= a - 0.02 for a, b in zip(fractions, fractions[1:], strict=False)), label
        # Diminishing returns: the final doubling adds only a modest amount
        # compared with the total range (the curve saturates).
        total_range = fractions[-1] - fractions[0]
        last_gain = fractions[-1] - fractions[-2]
        assert last_gain <= max(0.1, 0.6 * total_range + 0.02), label
    # The largest capacity captures a popular-input majority on the skewed sets.
    assert table["Criteo Kaggle"][-1] > 0.5
    assert table["Criteo Terabyte"][-1] > 0.5
