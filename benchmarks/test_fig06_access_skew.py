"""Figure 6 — per-entry access skew and the fraction of popular inputs.

Paper claim: embedding accesses are extremely skewed (the hottest entries
receive >100x more accesses than the tail) and, labelling entries that
account for >=1-in-100,000 accesses as popular, the majority (>=~75 %) of
*inputs* touch only popular entries.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.data import generate_click_log
from repro.data.skew import access_histogram, popular_entries, popular_input_fraction
from repro.models import RM1, RM2, RM3, RM4

#: Scaled-down stand-ins for the four datasets (same skew, fewer rows).
SCALED = [
    ("Criteo Kaggle", RM2.scaled(max_rows_per_table=4000)),
    ("Taobao Alibaba", RM1.scaled(max_rows_per_table=4000)),
    ("Criteo Terabyte", RM3.scaled(max_rows_per_table=4000)),
    ("Avazu", RM4.scaled(max_rows_per_table=4000)),
]

NUM_SAMPLES = 20_000


def analyse():
    rows = []
    for label, config in SCALED:
        log = generate_click_log(config.dataset, NUM_SAMPLES, seed=23)
        histograms = access_histogram(log.sparse, config.dataset.rows_per_table)
        hot = popular_entries(histograms)
        fraction = popular_input_fraction(log.sparse, hot)
        counts = np.concatenate([h[h > 0] for h in histograms])
        skew_ratio = float(np.percentile(counts, 99.9)) / max(1.0, float(np.median(counts)))
        rows.append((label, round(fraction * 100, 1), round(skew_ratio, 1)))
    return rows


def test_fig06_access_skew_and_popular_inputs(benchmark):
    rows = benchmark.pedantic(analyse, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["dataset", "% popular inputs", "p99.9/median accesses"],
            rows,
            title="Figure 6: popularity skew (synthetic stand-ins)",
        )
    )
    by_label = {row[0]: row for row in rows}
    for label, fraction, skew in rows:
        # Heavy-tailed access counts (orders of magnitude between hot/cold).
        assert skew > 10, label
        # Every dataset has a popular-input majority under the paper's
        # 1-in-100,000 threshold (paper: >=~75 % on the full-size data).
        assert fraction > 50.0, label
    # The Criteo datasets are strongly skewed (the paper's headline case).
    assert by_label["Criteo Terabyte"][1] > 60.0
    assert by_label["Criteo Kaggle"][1] > 60.0
