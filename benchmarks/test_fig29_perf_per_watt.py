"""Figure 29 — performance/Watt and the accelerator's area/power breakdown.

Paper claims: the EAL SRAM dominates the accelerator's 7.01 mm^2 area and
its power; despite the added power, Hotline improves training
throughput/Watt by ~3.9x over the baseline system (whose CPUs + 4 GPUs draw
three orders of magnitude more power than the accelerator).
"""

import pytest

from benchmarks.figutils import WORKLOADS, cost_model, geomean
from repro.analysis.report import format_breakdown, format_table
from repro.baselines import XDLParameterServer
from repro.core import HotlineScheduler
from repro.hwsim.energy import HOTLINE_ENERGY_MODEL, perf_per_watt_gain

#: Nominal board powers of the baseline system (W).
CPU_POWER = 85.0
GPU_POWER = 300.0
NUM_GPUS = 4


def build():
    baseline_power = CPU_POWER + NUM_GPUS * GPU_POWER
    accelerator_power = HOTLINE_ENERGY_MODEL.total_power_w
    gains = []
    for label, config in WORKLOADS:
        costs = cost_model(config, gpus=NUM_GPUS)
        speedup = HotlineScheduler(costs).speedup_over(XDLParameterServer(costs), 4096)
        gains.append(
            (label, round(speedup, 2),
             round(perf_per_watt_gain(speedup, baseline_power, accelerator_power), 2))
        )
    return gains, HOTLINE_ENERGY_MODEL.area_breakdown(), HOTLINE_ENERGY_MODEL.power_breakdown()


def test_fig29_perf_per_watt_and_breakdown(benchmark):
    gains, area, power = benchmark(build)
    print()
    print(
        format_table(
            ["dataset", "speedup", "perf/Watt gain"],
            gains,
            title="Figure 29 (left): throughput/Watt vs the software baseline",
        )
    )
    print()
    print(format_breakdown("Figure 29 (right): accelerator area breakdown", area))
    print()
    print(format_breakdown("Figure 29 (right): accelerator power breakdown", power))

    # The accelerator adds ~4-5 W to a ~1.3 kW system, so the perf/Watt gain
    # essentially equals the speedup (paper: 3.9x vs its baseline).
    for _label, speedup, gain in gains:
        assert gain == pytest.approx(speedup, rel=0.01)
    assert geomean(g for _, _, g in gains) > 2.5
    # The EAL dominates both area and power.
    assert max(area, key=area.get).startswith("Embedding Access Logger")
    assert max(power, key=power.get).startswith("Embedding Access Logger")
    assert area[max(area, key=area.get)] > 0.4
