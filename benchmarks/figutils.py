"""Helpers shared by the figure/table benchmarks."""

from __future__ import annotations

from repro.hwsim import multi_node, single_node
from repro.models import RM1, RM2, RM3, RM4
from repro.perf import TrainingCostModel

#: The four real-world workloads in the order the paper's figures use.
WORKLOADS = [
    ("Criteo Kaggle", RM2),
    ("Taobao Alibaba", RM1),
    ("Criteo Terabyte", RM3),
    ("Avazu", RM4),
]

#: Weak scaling: 1K inputs per GPU (Section VII-B1).
BATCH_PER_GPU = 1024


def cost_model(config, gpus: int = 4, nodes: int = 1) -> TrainingCostModel:
    """Build the standard cost model for one workload on the paper testbed."""
    cluster = single_node(gpus) if nodes == 1 else multi_node(nodes, gpus)
    return TrainingCostModel(config, cluster=cluster)


def geomean(values) -> float:
    """Geometric mean of a sequence of positive values."""
    import math

    values = list(values)
    return math.exp(sum(math.log(v) for v in values) / len(values))
