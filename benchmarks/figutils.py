"""Helpers shared by the figure/table benchmarks."""

from __future__ import annotations

import json
import os

from repro.hwsim import multi_node, single_node
from repro.models import RM1, RM2, RM3, RM4
from repro.perf import TrainingCostModel

#: Machine-readable benchmark artifact (uploaded by the nightly CI job so
#: the perf trajectory of the sparse hot path is tracked across commits).
#: Override the location with the ``BENCH_JSON`` environment variable.
BENCH_JSON_DEFAULT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_sparse_path.json",
)


def record_bench(
    op: str,
    *,
    config: str,
    seconds: float,
    speedup: float | None = None,
    gate: float | None = None,
    enforced: bool | None = None,
) -> None:
    """Append one benchmark observation to ``BENCH_sparse_path.json``.

    Each entry is ``{"op", "config", "seconds", "speedup", "gate",
    "enforced"}``; re-running a benchmark replaces its previous entry (the
    file accumulates one row per op, not per run), so the artifact is a
    snapshot of the latest run.

    ``gate`` is the minimum speedup the benchmark claims to enforce and
    ``enforced`` records whether its wall-clock assertion actually ran in
    this process (benchmarks skip the assertion off quiet hardware —
    ``BENCH_STRICT`` unset, or too few cores for a parallel measurement).
    Recording both keeps the artifact honest: ``benchmarks/
    check_bench_gates.py`` fails CI when an entry *measured* a speedup
    below its gate while the in-test assertion was skipped, so a silent
    skip can never masquerade as a pass.
    """
    path = os.environ.get("BENCH_JSON", BENCH_JSON_DEFAULT)
    entries = []
    if os.path.exists(path):
        try:
            with open(path) as handle:
                entries = json.load(handle)
        except (json.JSONDecodeError, OSError):
            entries = []
    entries = [entry for entry in entries if entry.get("op") != op]
    entry = {
        "op": op,
        "config": config,
        "seconds": round(float(seconds), 6),
        "speedup": None if speedup is None else round(float(speedup), 3),
    }
    if gate is not None:
        entry["gate"] = round(float(gate), 3)
        entry["enforced"] = bool(enforced)
    entries.append(entry)
    with open(path, "w") as handle:
        json.dump(entries, handle, indent=2)
        handle.write("\n")

#: The four real-world workloads in the order the paper's figures use.
WORKLOADS = [
    ("Criteo Kaggle", RM2),
    ("Taobao Alibaba", RM1),
    ("Criteo Terabyte", RM3),
    ("Avazu", RM4),
]

#: Weak scaling: 1K inputs per GPU (Section VII-B1).
BATCH_PER_GPU = 1024


def cost_model(config, gpus: int = 4, nodes: int = 1) -> TrainingCostModel:
    """Build the standard cost model for one workload on the paper testbed."""
    cluster = single_node(gpus) if nodes == 1 else multi_node(nodes, gpus)
    return TrainingCostModel(config, cluster=cluster)


def geomean(values) -> float:
    """Geometric mean of a sequence of positive values."""
    import math

    values = list(values)
    return math.exp(sum(math.log(v) for v in values) / len(values))
