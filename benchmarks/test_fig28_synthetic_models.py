"""Figure 28 — Hotline vs Intel DLRM on large multi-hot synthetic models.

Paper claim: Hotline's benefits persist for much larger, multi-hot models
(SYN-M1: 102 sparse features / 196 GB, SYN-M2: 204 features / 390 GB);
the gain drops slightly (from ~2.5x to ~2.2x) as the feature count grows
because the fixed-size lookup-engine array needs more cycles per input.
"""

from benchmarks.figutils import cost_model
from repro.analysis.report import format_table
from repro.baselines import HybridCPUGPU
from repro.core import HotlineScheduler
from repro.models import SYN_M1, SYN_M2

BATCH = 4096


def build_rows():
    rows = []
    for config in (SYN_M1, SYN_M2):
        costs = cost_model(config, gpus=4)
        hotline = HotlineScheduler(costs)
        hybrid = HybridCPUGPU(costs)
        segregation_cycles = hotline.accelerator.lookup_engines.segregation_cycles(
            BATCH, config.dataset.lookups_per_sample()
        )
        rows.append(
            (
                config.name,
                config.num_sparse_features,
                round(config.embedding_gigabytes),
                round(hotline.speedup_over(hybrid, BATCH), 2),
                segregation_cycles,
            )
        )
    return rows


def test_fig28_synthetic_model_scaling(benchmark):
    rows = benchmark(build_rows)
    print()
    print(
        format_table(
            ["model", "sparse features", "size GB", "Hotline speedup over DLRM",
             "segregation cycles"],
            rows,
            title="Figure 28: large multi-hot synthetic models (4 GPUs)",
        )
    )
    syn1, syn2 = rows
    # The benefit is sustained for both very large multi-hot models (the
    # paper reports 2.5x and 2.2x; our CPU-side multi-hot cost model is more
    # pessimistic, so the absolute factor is larger — see EXPERIMENTS.md).
    assert syn1[3] > 1.8
    assert syn2[3] > 1.6
    # Doubling the sparse features doubles the segregation work on the
    # fixed-size 64-engine array (the mechanism behind the paper's slight
    # 2.5x -> 2.2x decline).
    assert syn2[4] > 1.8 * syn1[4]
    # The advantage does not grow disproportionately with model size.
    assert syn2[3] < 1.3 * syn1[3]
