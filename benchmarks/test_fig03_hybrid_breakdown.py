"""Figure 3 — training-time breakdown of the hybrid CPU-GPU (Intel DLRM) mode.

Paper claim: embedding operations (lookup, optimizer update) plus CPU-GPU
communication account for up to ~75 % of training time on the large Criteo
datasets, while the Taobao (TBSM) workload is neural-network dominated.
"""


from benchmarks.figutils import BATCH_PER_GPU, WORKLOADS, cost_model
from repro.analysis.breakdown import embedding_related_fraction, normalised_breakdown
from repro.analysis.report import format_breakdown
from repro.baselines import HybridCPUGPU


def build_breakdowns():
    result = {}
    for label, config in WORKLOADS:
        mode = HybridCPUGPU(cost_model(config, gpus=4))
        result[label] = normalised_breakdown(mode.step_timeline(4 * BATCH_PER_GPU))
    return result


def test_fig03_hybrid_cpu_gpu_breakdown(benchmark):
    breakdowns = benchmark(build_breakdowns)
    print()
    for label, breakdown in breakdowns.items():
        print(format_breakdown(f"Figure 3 - {label} (hybrid 4-GPU)", breakdown))
        print()

    criteo_like = ["Criteo Kaggle", "Criteo Terabyte", "Avazu"]
    for label in criteo_like:
        fraction = embedding_related_fraction(breakdowns[label])
        # Embedding work + communication dominates the Criteo-style datasets.
        assert 0.5 < fraction < 0.95
    # Criteo Terabyte is the most embedding-bound of the four.
    terabyte = embedding_related_fraction(breakdowns["Criteo Terabyte"])
    taobao = embedding_related_fraction(breakdowns["Taobao Alibaba"])
    assert terabyte > taobao
    # Taobao (TBSM) spends more time in the MLPs than in embedding lookups.
    assert (
        breakdowns["Taobao Alibaba"]["mlp"] + breakdowns["Taobao Alibaba"]["backward"]
        > breakdowns["Taobao Alibaba"]["embedding"]
    )
