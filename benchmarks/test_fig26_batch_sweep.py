"""Figure 26 — Hotline speedup vs mini-batch size (1K - 16K inputs, 4 GPUs).

Paper claim: Hotline's advantage over the Intel-optimized DLRM baseline
grows with the mini-batch size, because a larger popular µ-batch provides
more GPU work under which to hide parameter gathering while the baseline's
CPU-side embedding work keeps growing.
"""

from benchmarks.figutils import WORKLOADS, cost_model
from repro.analysis.report import format_table
from repro.baselines import HybridCPUGPU
from repro.core import HotlineScheduler

BATCHES = [1024, 2048, 4096, 8192, 16384]


def sweep():
    table = {}
    for label, config in WORKLOADS:
        costs = cost_model(config, gpus=4)
        hotline = HotlineScheduler(costs)
        hybrid = HybridCPUGPU(costs)
        table[label] = [round(hotline.speedup_over(hybrid, batch), 2) for batch in BATCHES]
    return table


def test_fig26_speedup_vs_minibatch_size(benchmark):
    table = benchmark(sweep)
    print()
    rows = [[label] + speedups for label, speedups in table.items()]
    print(
        format_table(
            ["dataset"] + [f"{b // 1024}K" for b in BATCHES],
            rows,
            title="Figure 26: Hotline speedup over Intel DLRM vs mini-batch size (4 GPUs)",
        )
    )
    for label, speedups in table.items():
        # The speedup widens from 2K inputs upward and ends above where it
        # started (the paper's claim; at 1K the baseline is also throttled by
        # poor CPU thread utilisation, which slightly lifts its own cost).
        assert all(b >= a - 0.05 for a, b in zip(speedups[1:], speedups[2:], strict=False)), label
        assert speedups[-1] > speedups[0], label
        assert speedups[-1] > speedups[1], label
    # The embedding-dominated datasets gain the most at 16K.
    assert table["Criteo Terabyte"][-1] > table["Taobao Alibaba"][-1]
