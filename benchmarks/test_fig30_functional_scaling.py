"""Figure 30 companion — multi-node scaling from a *functional* sharded run.

The original fig30 rows come from the timing model alone.  Here the
:class:`~repro.core.distributed.MergedGradientShardedTrainer` (the shared-
replica K-shard path — the cheapest route to the bit-identical result; the
true multi-replica trainer has its own sweep in ``fig30r``) actually trains
a (scaled-down) DLRM at 4 shards per node and the engine reports per-shard
compute plus the dense all-reduce term from :mod:`repro.hwsim.collectives`.
The paper-shaped claims checked:

* the recorded losses are numerically identical at every node count — the
  K-shard update is the single-replica update (Eq. 5 across shards), so
  scaling out does not change what the model learns;
* the communication term grows with the node count and matches the
  hierarchical all-reduce cost model exactly.
"""

import pytest

from repro.analysis.report import format_table
from repro.experiments import run_experiment
from repro.hwsim.cluster import multi_node
from repro.hwsim.collectives import hierarchical_allreduce_time


def test_fig30f_functional_scaling(benchmark):
    data = benchmark.pedantic(lambda: run_experiment("fig30f"), rounds=1, iterations=1)
    rows = [
        (
            label,
            entry["shards"],
            round(entry["final_loss"], 6),
            round(entry["compute_time_s"] * 1e3, 3),
            round(entry["communication_time_s"] * 1e3, 3),
        )
        for label, entry in data.items()
    ]
    print()
    print(
        format_table(
            ["nodes", "shards", "final loss", "compute ms", "allreduce ms"],
            rows,
            title="Figure 30 (functional): sharded Hotline scaling",
        )
    )
    one, two, four = (data[f"{n} node(s)"] for n in (1, 2, 4))
    # Eq. 5 across shards: scaling out never changes the training result.
    assert two["final_loss"] == pytest.approx(one["final_loss"], rel=1e-9)
    assert four["final_loss"] == pytest.approx(one["final_loss"], rel=1e-9)
    # The all-reduce term appears as soon as there is more than one shard
    # and grows once the ring spans InfiniBand instead of NVLink.
    assert one["communication_time_s"] > 0.0
    assert four["communication_time_s"] > two["communication_time_s"] > (
        one["communication_time_s"]
    )
    # And the multi-node term is exactly hwsim's hierarchical all-reduce
    # per iteration (4 steps of the 1024-sample epoch at batch 256).
    from repro.models import RM2
    from repro.models.dlrm import DLRM

    config = RM2.scaled(max_rows_per_table=600, samples_per_epoch=1024)
    grad_bytes = DLRM(config, seed=5).num_dense_parameters * 4.0
    steps = 4
    cluster = multi_node(4, 4)
    expected_per_step = hierarchical_allreduce_time(
        grad_bytes, 4, 4, cluster.node.gpu_link, cluster.inter_link
    )
    assert four["communication_time_s"] == pytest.approx(expected_per_step * steps)
