"""Table IV — Hotline accelerator specification.

Regenerates the accelerator parameter table and the derived per-mini-batch
segregation latency, confirming it is orders of magnitude below the CPU's
(the property that lets Hotline hide segregation entirely).
"""

import pytest

from benchmarks.figutils import cost_model
from repro.analysis.report import format_table
from repro.core import HOTLINE_ACCELERATOR_SPEC, HotlineAccelerator
from repro.models import RM3


def build_spec_rows():
    spec = HOTLINE_ACCELERATOR_SPEC
    return [
        ("Frequency", f"{spec.frequency_hz / 1e6:.0f} MHz"),
        ("EAL size", f"{spec.eal_size_bytes // (1024 * 1024)} MB"),
        ("No of Lookup Engines", spec.num_lookup_engines),
        ("No of Reducer ALU Units", spec.num_reducer_alus),
        ("Input eDRAM size", f"{spec.input_edram_bytes / (1024 * 1024):.1f} MB"),
        ("Embedding Vector Buffer", f"{spec.embedding_vector_buffer_bytes / 1024:.1f} kB"),
        ("Total Area", f"{spec.total_area_mm2} mm2"),
        ("Average Energy", f"{spec.average_energy_joules * 1e3:.0f} mJ"),
    ]


def test_table4_accelerator_spec(benchmark):
    rows = benchmark(build_spec_rows)
    print()
    print(
        format_table(
            ["parameter", "setting"], rows, title="Table IV: Accelerator Specifications"
        )
    )
    spec = HOTLINE_ACCELERATOR_SPEC
    assert spec.frequency_hz == pytest.approx(350e6)
    assert spec.total_area_mm2 == pytest.approx(7.01)
    assert spec.average_energy_joules == pytest.approx(0.132)
    assert spec.num_lookup_engines == 64
    assert spec.num_reducer_alus == 16


def test_accelerator_segregation_vs_cpu(benchmark):
    """The accelerator segregates a 4K Terabyte mini-batch >20x faster than
    the 24-core CPU (the enabler of Figures 7/12)."""
    costs = cost_model(RM3, gpus=4)
    accel = HotlineAccelerator(row_bytes=RM3.bytes_per_lookup())

    def measure():
        return (
            accel.segregation_time(4096, RM3.dataset.lookups_per_sample()),
            costs.cpu_segregation_time(4096),
        )

    accel_time, cpu_time = benchmark(measure)
    print(f"\naccelerator segregation: {accel_time * 1e6:.1f} us, CPU: {cpu_time * 1e3:.2f} ms")
    assert cpu_time > 20 * accel_time
