"""Figure 7 — CPU-based segregation time vs GPU mini-batch training time.

Paper claim: even using all CPU cores, segregating a mini-batch into popular
and non-popular µ-batches on the CPU takes comparable-to-longer (up to
~2.5x) than the GPUs take to train on that mini-batch, so a CPU-based
scheduler cannot hide the segregation latency.
"""

from benchmarks.figutils import BATCH_PER_GPU, WORKLOADS, cost_model
from repro.analysis.report import format_table
from repro.core import HotlineScheduler


def build_rows():
    rows = []
    for label, config in WORKLOADS:
        for gpus in (1, 2, 4):
            costs = cost_model(config, gpus=gpus)
            batch = gpus * BATCH_PER_GPU
            segregation = costs.cpu_segregation_time(batch)
            plan = HotlineScheduler(costs).plan_step(batch)
            gpu_training = plan.popular_exec_time + plan.non_popular_exec_time
            rows.append(
                (label, gpus, round(segregation * 1e3, 2), round(gpu_training * 1e3, 2),
                 round(segregation / gpu_training, 2))
            )
    return rows


def test_fig07_cpu_segregation_vs_gpu_training(benchmark):
    rows = benchmark(build_rows)
    print()
    print(
        format_table(
            ["dataset", "GPUs", "CPU segregation (ms)", "GPU training (ms)", "ratio"],
            rows,
            title="Figure 7: CPU-based segregation vs GPU-based training",
        )
    )
    ratios = [row[4] for row in rows]
    # Segregation is never negligible and reaches >=2x for some workloads
    # (the paper reports up to ~2.5x).
    assert min(ratios) > 0.3
    assert max(ratios) >= 2.0
    assert max(ratios) < 5.0
    # Segregation time grows with mini-batch size (1K -> 4K inputs).
    for label, _config in WORKLOADS:
        per_label = [row for row in rows if row[0] == label]
        assert per_label[-1][2] > per_label[0][2]
