"""Scenario: ad click-through-rate training under drifting popularity.

Real recommendation traffic changes hour to hour: the items that are hot
today are not the items that were hot last week (the paper's Figure 9).
This example simulates several "days" of Criteo-Terabyte-like traffic with a
drifting hot set and shows why Hotline re-enters its learning phase
periodically:

* a *static* hot set profiled on day 0 classifies fewer and fewer inputs as
  popular on later days (so less work stays on the GPUs);
* Hotline's *online re-calibration* restores the popular fraction each day.

Run:  python examples/ad_ctr_with_drifting_popularity.py
"""

from __future__ import annotations

import numpy as np

from repro.core.accelerator import HotlineAccelerator
from repro.core.eal import EALConfig
from repro.core.lookup_engine import LookupEngineArray
from repro.data.skew import EvolvingSkewGenerator
from repro.models import RM3

NUM_DAYS = 6
SAMPLES_PER_DAY = 6000


def popular_fraction(sparse: np.ndarray, hot_sets) -> float:
    """Fraction of inputs whose every lookup hits the tracked hot set."""
    return float(LookupEngineArray(64).classify_with_hot_sets(sparse, hot_sets).mean())


def main() -> None:
    config = RM3.scaled(max_rows_per_table=3000)
    generator = EvolvingSkewGenerator(config.dataset, drift_per_day=0.2, seed=11)
    num_tables = config.num_sparse_features

    def new_accelerator() -> HotlineAccelerator:
        return HotlineAccelerator(
            row_bytes=config.embedding_dim * 4,
            eal_config=EALConfig(size_bytes=1 << 15, ways=16),
        )

    # Static profile: learn once on day 0 and never again (FAE-style).
    static_accel = new_accelerator()
    day0 = generator.day(0, SAMPLES_PER_DAY)
    static_accel.learn_from_batch(day0.sparse[: SAMPLES_PER_DAY // 2])
    static_hot = static_accel.hot_sets(num_tables)

    # Online profile: re-calibrate at the start of every day (Hotline).
    online_accel = new_accelerator()

    print(f"{'day':>4}  {'static profile':>16}  {'online re-calibration':>22}")
    static_history, online_history = [], []
    for day in range(NUM_DAYS):
        traffic = generator.day(day, SAMPLES_PER_DAY)
        online_accel.recalibrate()
        online_accel.learn_from_batch(traffic.sparse[: SAMPLES_PER_DAY // 2])
        online_hot = online_accel.hot_sets(num_tables)

        evaluation = traffic.sparse[SAMPLES_PER_DAY // 2 :]
        static_frac = popular_fraction(evaluation, static_hot)
        online_frac = popular_fraction(evaluation, online_hot)
        static_history.append(static_frac)
        online_history.append(online_frac)
        print(f"{day:>4}  {static_frac:>15.1%}  {online_frac:>21.1%}")

    print("\nThe static day-0 profile loses popular coverage as user behaviour "
          "drifts, while online re-calibration keeps the popular fraction high —")
    print(f"day-{NUM_DAYS - 1} popular inputs: static {static_history[-1]:.1%} vs "
          f"online {online_history[-1]:.1%}.")
    print("A lower popular fraction means more inputs take the slow CPU path, "
          "which is exactly why Hotline profiles online (paper Section III, Challenge 3).")


if __name__ == "__main__":
    main()
