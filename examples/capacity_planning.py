"""Scenario: capacity planning — how many GPUs does each training mode need?

A platform team has four recommendation models (RM1-RM4 from the paper's
Table II, plus the two large synthetic models) and must decide how to train
each one: GPU-only (HugeCTR-style), hybrid CPU-GPU (Intel-optimized DLRM),
or Hotline.  This example uses the performance/capacity models to produce a
planning table: feasibility at each GPU count, step time, and training
throughput — reproducing the paper's capacity argument that Hotline trains
Criteo Terabyte on a *single* GPU while the GPU-only mode needs four.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.baselines import HugeCTRGPUOnly, HybridCPUGPU, OutOfMemoryError
from repro.core import HotlineScheduler
from repro.hwsim import single_node
from repro.models import PAPER_MODELS
from repro.perf import TrainingCostModel

BATCH_PER_GPU = 1024
MODELS = ["RM1", "RM2", "RM3", "RM4", "SYN-M1", "SYN-M2"]
GPU_COUNTS = [1, 2, 4]


def plan() -> list[tuple]:
    rows = []
    for name in MODELS:
        config = PAPER_MODELS[name]
        for gpus in GPU_COUNTS:
            costs = TrainingCostModel(config, cluster=single_node(gpus))
            batch = gpus * BATCH_PER_GPU
            hugectr = HugeCTRGPUOnly(costs)
            hybrid = HybridCPUGPU(costs)
            hotline = HotlineScheduler(costs)

            if hugectr.is_feasible():
                gpu_only = f"{hugectr.step_time(batch) * 1e3:.1f} ms"
            else:
                gpu_only = "OOM"
            if costs.embedding_fits_cpu():
                hybrid_time = f"{hybrid.step_time(batch) * 1e3:.1f} ms"
                hotline_time = f"{hotline.step_time(batch) * 1e3:.1f} ms"
            else:
                hybrid_time = hotline_time = "OOM (CPU DRAM)"
            rows.append(
                (
                    name,
                    f"{config.embedding_gigabytes:.1f} GB",
                    gpus,
                    gpu_only,
                    hybrid_time,
                    hotline_time,
                )
            )
    return rows


def main() -> None:
    rows = plan()
    print(
        format_table(
            ["model", "embeddings", "GPUs", "GPU-only step", "hybrid step", "Hotline step"],
            rows,
            title="Capacity planning on a single node (V100 16 GB GPUs, 192 GB DRAM)",
        )
    )
    print()
    print("Observations (matching the paper):")
    print(" * Criteo Terabyte (RM3, 63 GB) is OOM for the GPU-only mode below 4 GPUs,")
    print("   but Hotline trains it on a single GPU by keeping the tail in CPU DRAM.")
    print(" * The synthetic 196/390 GB models cannot use the GPU-only mode on one node at all.")
    print(" * Where both run, Hotline's step time is the lowest of the three modes.")


if __name__ == "__main__":
    main()
