"""Quickstart: train a DLRM with the Hotline pipeline and verify fidelity.

This example walks the whole public API in a few minutes on a laptop:

1. build a scaled-down Criteo-Kaggle-like model (RM2) and a synthetic
   Zipf-skewed click log;
2. run Hotline's learning phase (online popularity profiling on the
   accelerator's Embedding Access Logger);
3. train with the Hotline µ-batch schedule and with the plain baseline;
4. show that the accuracy metrics are identical (the paper's Table V claim)
   while the simulated wall-clock time is much lower (the Figure 19 claim).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.baselines import HybridCPUGPU
from repro.core import HotlineScheduler, HotlineTrainer
from repro.core.accelerator import HotlineAccelerator
from repro.core.eal import EALConfig
from repro.core.pipeline import ReferenceTrainer
from repro.data import MiniBatchLoader, generate_click_log
from repro.hwsim import single_node
from repro.models import RM2
from repro.models.dlrm import DLRM
from repro.perf import TrainingCostModel


def main() -> None:
    # 1. A trainable stand-in for RM2 / Criteo Kaggle (Table II).
    config = RM2.scaled(max_rows_per_table=2000, samples_per_epoch=8192)
    log = generate_click_log(config.dataset, 8192, seed=1)
    loader = MiniBatchLoader(log, batch_size=256)
    eval_batch = log.batch(6144, 2048)
    print(f"model: {config.name}  tables: {config.num_sparse_features}  "
          f"embedding rows: {config.dataset.total_rows:,}")

    # 2. Hotline hardware: the accelerator model plus the paper's 4-GPU node.
    accelerator = HotlineAccelerator(
        row_bytes=config.embedding_dim * 4,
        eal_config=EALConfig(size_bytes=1 << 17, ways=16),
    )
    costs = TrainingCostModel(RM2, cluster=single_node(4))
    hotline_perf = HotlineScheduler(costs)
    baseline_perf = HybridCPUGPU(costs)

    # 3. Train with Hotline and with the baseline schedule.
    hotline = HotlineTrainer(
        DLRM(config, seed=7), accelerator, lr=0.3, sample_fraction=0.1,
        perf_model=hotline_perf,
    )
    placement = hotline.learning_phase(loader)
    print(f"learning phase: {placement.hot_rows_total:,} rows replicated on GPU HBM "
          f"({placement.gpu_bytes / 1e6:.1f} MB)")
    hotline_result = hotline.train(loader, epochs=2, eval_batch=eval_batch, eval_every=8)

    baseline = ReferenceTrainer(DLRM(config, seed=7), lr=0.3, perf_model=baseline_perf)
    baseline_result = baseline.train(loader, epochs=2, eval_batch=eval_batch, eval_every=8)

    # 4. Fidelity and performance.
    print("\n--- fidelity (Table V) ---")
    for metric in ("accuracy", "auc", "logloss"):
        print(f"{metric:>9}: baseline {baseline_result.final_metrics[metric]:.6f}  "
              f"hotline {hotline_result.final_metrics[metric]:.6f}")
    print(f"\npopular-input fraction observed: {hotline_result.mean_popular_fraction:.2%}")

    print("\n--- simulated training time on the paper's 4-GPU testbed ---")
    print(f"baseline (Intel-optimized hybrid DLRM): {baseline_result.simulated_time_s:.3f} s")
    print(f"Hotline:                                {hotline_result.simulated_time_s:.3f} s")
    print(f"speedup: {baseline_result.simulated_time_s / hotline_result.simulated_time_s:.2f}x "
          f"(paper reports 2.2x on average at 4 GPUs)")


if __name__ == "__main__":
    main()
