"""Scenario: exploring the Hotline accelerator's design space.

An architect sizing the Hotline accelerator has three key knobs:

* the Embedding Access Logger capacity (how many hot indices it can track),
* the number of SRAM banks and the input-queue depth (how many lookups it
  can test per cycle), and
* how much popular-µ-batch GPU work is available to hide the non-popular
  parameter gathering.

This example sweeps all three (the paper's Figures 16, 25, and 27) and
prints the resulting design table, ending with the area/power budget of the
chosen configuration (Table IV / Figure 29).

Run:  python examples/accelerator_design_space.py
"""

from __future__ import annotations

from repro.analysis.report import format_breakdown, format_series, format_table
from repro.core import HotlineScheduler
from repro.core.eal import EALConfig, EmbeddingAccessLogger, expected_parallel_requests
from repro.core.lookup_engine import LookupEngineArray
from repro.data import generate_click_log
from repro.hwsim import single_node
from repro.hwsim.energy import HOTLINE_ENERGY_MODEL
from repro.models import RM3
from repro.perf import TrainingCostModel


def sweep_eal_capacity() -> None:
    """How much logger capacity does the scaled Terabyte stand-in need?"""
    config = RM3.scaled(max_rows_per_table=2000)
    log = generate_click_log(config.dataset, 4000, seed=5)
    train, evaluation = log.sparse[:2500], log.sparse[2500:]
    array = LookupEngineArray(64)
    capacities = [256, 512, 1024, 2048, 4096]
    fractions = []
    for capacity in capacities:
        eal = EmbeddingAccessLogger(EALConfig(size_bytes=capacity * 2, ways=16), seed=0)
        eal.access_batch(train)
        hot = eal.hot_indices(config.num_sparse_features)
        fractions.append(float(array.classify_with_hot_sets(evaluation, hot).mean()))
    print(
        format_series(
            "EAL capacity sweep (scaled Criteo Terabyte)",
            capacities,
            [round(100 * f, 1) for f in fractions],
            x_label="tracked entries",
            y_label="% popular inputs",
        )
    )
    print()


def sweep_banks_and_queue() -> None:
    """Figure 16: parallel lookups per iteration vs banks x queue depth."""
    rows = []
    for banks in (8, 16, 32, 64):
        rows.append(
            [f"{banks} banks"]
            + [round(expected_parallel_requests(queue, banks), 1) for queue in (32, 128, 512)]
        )
    print(format_table(["config", "queue=32", "queue=128", "queue=512"], rows,
                       title="Parallel EAL requests per iteration"))
    print()


def sweep_popular_ratio() -> None:
    """Figure 25: when does the non-popular gather stop being hidden?"""
    scheduler = HotlineScheduler(TrainingCostModel(RM3, cluster=single_node(4)))
    rows = []
    for ratio in (0.2, 0.3, 0.5, 0.75, 0.9):
        plan = scheduler.plan_step(4096, hot_fraction=ratio)
        rows.append(
            (
                f"{ratio:.0%} popular",
                f"{plan.popular_exec_time * 1e3:.2f} ms",
                f"{plan.gather_time * 1e3:.2f} ms",
                "hidden" if plan.gather_hidden else f"exposed {plan.exposed_gather_time * 1e3:.2f} ms",
            )
        )
    print(format_table(["µ-batch ratio", "popular GPU exec", "gather", "status"], rows,
                       title="Hiding the non-popular parameter gather (Criteo Terabyte, 4K batch)"))
    print()


def show_budget() -> None:
    """Table IV / Figure 29: what does the chosen design cost in silicon?"""
    print(format_breakdown("Accelerator area breakdown (7.01 mm^2 total)",
                           HOTLINE_ENERGY_MODEL.area_breakdown()))
    print()
    print(format_breakdown(f"Accelerator power breakdown ({HOTLINE_ENERGY_MODEL.total_power_w:.1f} W total)",
                           HOTLINE_ENERGY_MODEL.power_breakdown()))


def main() -> None:
    sweep_eal_capacity()
    sweep_banks_and_queue()
    sweep_popular_ratio()
    show_budget()


if __name__ == "__main__":
    main()
