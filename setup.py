"""Setuptools entry point.

Present so that ``pip install -e .`` works in offline environments whose
setuptools lacks the ``wheel`` package required by the PEP 517 editable
path (use ``pip install -e . --no-build-isolation --no-use-pep517`` there).
Configuration lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
